/**
 * @file
 * Serving-plane latency and throughput: drive a sharded rack through
 * the asynchronous multi-tenant front end (runtime::Server), sweeping
 * tenant count x queue depth x worker count on a surface-code
 * syndrome workload, and report job throughput, queue/total latency
 * percentiles, batch coalescing fill, and decoded-window cache
 * behavior under genuinely concurrent mixed-tenant traffic.
 *
 * The headline metric is queued-vs-synchronous throughput at equal
 * worker count: the server coalesces jobs from many tenants into rack
 * batches (fewer executor barriers, better cell-level load balance)
 * and must beat the PR 2 synchronous per-submission executeBatch
 * loop. A deterministic pause/fill/overflow segment also measures the
 * admission-control contract (reject-with-status at queueDepth).
 *
 * Emits BENCH_serving_latency.json so the serving trajectory is
 * tracked across PRs.
 *
 * Usage: bench_serving_latency [--tiny]
 *   --tiny  CI smoke mode: smallest sweep that still exercises every
 *           code path and emits the full JSON schema.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <cstdint>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "circuits/scheduler.hh"
#include "circuits/surface_code.hh"
#include "common/table.hh"
#include "runtime/rack.hh"
#include "runtime/server.hh"
#include "runtime/service.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"

using namespace compaqt;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Workload
{
    std::size_t qubits;
    waveform::DeviceModel dev;
    core::CompressedLibrary clib;
    /** Heavy job: one full syndrome-extraction round. */
    circuits::Schedule syndrome;
    /** Light job: a short calibration ping (a handful of 1q
     *  pulses) — the small-request tail real serving traffic is
     *  mostly made of. */
    circuits::Schedule ping;

    /** Tenant streams interleave 3 pings per syndrome round. */
    const circuits::Schedule &
    job(int j) const
    {
        return j % 4 == 0 ? syndrome : ping;
    }
};

Workload
makeWorkload(int distance)
{
    const auto sc = circuits::makeSurfaceCode(
        distance, circuits::SurfaceLayout::Rotated, 1);
    auto dev = waveform::DeviceModel::synthetic(
        "serving-surface-" + std::to_string(sc.totalQubits()),
        sc.totalQubits(), sc.nativeCoupling().edges());
    const auto lib = waveform::PulseLibrary::build(dev);
    auto clib = bench::buildCompressed(lib, "int-dct", 16);
    const int n = static_cast<int>(sc.totalQubits());
    circuits::Circuit ping(n);
    for (int q = 0; q < std::min(n, 8); ++q)
        ping.x(q);
    return Workload{sc.totalQubits(),
                    std::move(dev),
                    std::move(clib),
                    circuits::schedule(sc.circuit, {}),
                    circuits::schedule(ping, {})};
}

runtime::RackConfig
rackConfig(const Workload &w, int shards)
{
    runtime::RackConfig rc;
    rc.numShards = shards;
    rc.policy = runtime::ShardPolicy::LocalityAware;
    rc.controller.compressed = true;
    rc.controller.windowSize = 16;
    rc.controller.memoryWidth = w.clib.worstCaseWindowWords();
    rc.cacheWindows = 1u << 15;
    return rc;
}

struct QueuedRun
{
    double wallSeconds = 0.0;
    double jobsPerSec = 0.0;
    double gatesPerSec = 0.0;
    runtime::ServerStats stats;
};

/**
 * One measured submission wave against a persistent server: every
 * tenant thread submits its job stream and waits for all futures;
 * throughput comes from deltas of the server's lifetime counters so
 * waves compose (shared by the sweep and the head-to-head
 * comparison). Returns gates/s; jobs/s via out-param.
 */
double
servingPass(runtime::Server &server, const Workload &w,
            const std::vector<std::string> &tenant_names,
            int jobs_per_tenant, std::uint64_t &gates_before,
            std::uint64_t &completed_before, double &jobs_per_sec)
{
    const int tenants = static_cast<int>(tenant_names.size());
    const auto t0 = Clock::now();
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t)
        submitters.emplace_back([&, t] {
            std::vector<std::future<runtime::JobResult>> futs;
            futs.reserve(static_cast<std::size_t>(jobs_per_tenant));
            for (int j = 0; j < jobs_per_tenant; ++j)
                futs.push_back(server.submit(
                    {tenant_names[static_cast<std::size_t>(t)],
                     w.job(j)}));
            for (auto &f : futs)
                f.get();
        });
    for (auto &t : submitters)
        t.join();
    const double wall = secondsSince(t0);
    const auto stats = server.stats();
    const auto gates = stats.gatesPlayed - gates_before;
    const auto done = stats.completed - completed_before;
    gates_before = stats.gatesPlayed;
    completed_before = stats.completed;
    jobs_per_sec =
        wall > 0.0 ? static_cast<double>(done) / wall : 0.0;
    return wall > 0.0 ? static_cast<double>(gates) / wall : 0.0;
}

std::vector<std::string>
tenantNames(int tenants)
{
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t)
        names.push_back("tenant-" + std::to_string(t));
    return names;
}

/**
 * One serving configuration: `tenants` submitter threads each stream
 * `jobs_per_tenant` jobs at the server, `reps` times against one
 * rack (first rep warms the decoded-window cache; best rep reports
 * the machine's steady-state capability, not its stalls — the same
 * protocol as bench_rack_throughput).
 */
QueuedRun
runQueued(const Workload &w, int shards, int tenants,
          int jobs_per_tenant, std::size_t queue_depth, int workers,
          int reps)
{
    const runtime::Rack rack(w.dev, w.clib, rackConfig(w, shards));
    runtime::Server server(rack, {.workers = workers,
                                  .queueDepth = queue_depth,
                                  .maxBatch = 16});
    const auto tenant_names = tenantNames(tenants);

    QueuedRun best;
    std::uint64_t gates_before = 0, completed_before = 0;
    for (int rep = 0; rep < reps; ++rep) {
        double jps = 0.0;
        const double gps =
            servingPass(server, w, tenant_names, jobs_per_tenant,
                        gates_before, completed_before, jps);
        if (gps > best.gatesPerSec) {
            best.gatesPerSec = gps;
            best.jobsPerSec = jps;
        }
    }
    // Counters and latency rollups cover all reps (steady state
    // dominates: only the first rep decodes cold).
    best.stats = server.stats();
    return best;
}

/** Head-to-head result at equal worker count. */
struct Comparison
{
    double queuedGatesPerSec = 0.0;
    double queuedJobsPerSec = 0.0;
    double syncGatesPerSec = 0.0;
    /** Server stats over all comparison passes (latency rollups). */
    runtime::ServerStats queuedStats;
};

/**
 * The acceptance comparison: the queued multi-tenant front end vs
 * the PR 2 synchronous per-submission path, equal worker count, same
 * offered load. The synchronous side runs the same tenant threads
 * but must serialize them with a caller-side mutex — a
 * RuntimeService cannot be entered concurrently — which is exactly
 * the handoff overhead the server's queue-and-coalesce replaces.
 *
 * Both worlds persist across passes (shared cache warmup) and the
 * measured passes alternate queued/sync so scheduler drift lands on
 * both sides equally instead of biasing whichever ran last.
 */
Comparison
compareFrontEnds(const Workload &w, int shards, int tenants,
                 int jobs_per_tenant, int workers, int passes)
{
    const runtime::Rack qrack(w.dev, w.clib, rackConfig(w, shards));
    runtime::Server server(qrack, {.workers = workers,
                                   .queueDepth = 1024,
                                   .maxBatch = 16});
    const runtime::Rack srack(w.dev, w.clib, rackConfig(w, shards));
    runtime::RuntimeService svc(srack, {.workers = workers});
    const auto tenant_names = tenantNames(tenants);

    std::uint64_t gates_before = 0, completed_before = 0;
    auto queuedPass = [&](double &jobs_per_sec) {
        return servingPass(server, w, tenant_names, jobs_per_tenant,
                           gates_before, completed_before,
                           jobs_per_sec);
    };
    auto syncPass = [&] {
        std::mutex mu;
        std::atomic<std::uint64_t> gates{0};
        const auto t0 = Clock::now();
        std::vector<std::thread> threads;
        for (int t = 0; t < tenants; ++t)
            threads.emplace_back([&] {
                for (int j = 0; j < jobs_per_tenant; ++j) {
                    std::lock_guard lock(mu);
                    gates += svc.executeBatch({w.job(j)}).totalGates;
                }
            });
        for (auto &t : threads)
            t.join();
        const double wall = secondsSince(t0);
        return wall > 0.0
                   ? static_cast<double>(gates.load()) / wall
                   : 0.0;
    };

    // Shared warmup: both caches hot before anything is measured.
    double ignored = 0.0;
    queuedPass(ignored);
    syncPass();

    Comparison c;
    for (int p = 0; p < passes; ++p) {
        double jps = 0.0;
        const double q = queuedPass(jps);
        if (q > c.queuedGatesPerSec) {
            c.queuedGatesPerSec = q;
            c.queuedJobsPerSec = jps;
        }
        c.syncGatesPerSec = std::max(c.syncGatesPerSec, syncPass());
    }
    c.queuedStats = server.stats();
    return c;
}

/** Upper reference: the whole job set as one synchronous batch. */
double
runSyncBigBatch(const Workload &w, int shards, int total_jobs,
                int workers, int reps)
{
    const runtime::Rack rack(w.dev, w.clib, rackConfig(w, shards));
    runtime::RuntimeService svc(rack, {.workers = workers});
    std::vector<circuits::Schedule> batch;
    batch.reserve(static_cast<std::size_t>(total_jobs));
    for (int j = 0; j < total_jobs; ++j)
        batch.push_back(w.job(j));
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        const auto stats = svc.executeBatch(batch);
        const double wall = secondsSince(t0);
        if (wall > 0.0)
            best = std::max(
                best,
                static_cast<double>(stats.totalGates) / wall);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool tiny =
        argc > 1 && std::strcmp(argv[1], "--tiny") == 0;

    bench::JsonReport report("serving_latency");

    const int distance = 3;
    const int shards = tiny ? 2 : 4;
    const int jobs_per_tenant = tiny ? 8 : 16;
    const int reps = 3;
    const std::vector<int> tenant_counts =
        tiny ? std::vector<int>{8} : std::vector<int>{1, 4, 8};
    // Depth 8 shows admission control rejecting under overload,
    // depth 256 admits the whole job set (both modes keep both: the
    // backpressure row is part of the schema CI checks).
    const std::vector<std::size_t> queue_depths = {8, 256};
    const std::vector<int> worker_counts =
        tiny ? std::vector<int>{2, 4} : std::vector<int>{1, 2, 4};
    const int compare_workers = 8;
    const int compare_tenants = tenant_counts.back();
    report.setWorkers(compare_workers);

    const auto w = makeWorkload(distance);

    Table t("serving latency: tenants x queue depth x workers"
            " (d=3 syndrome jobs, maxBatch=16)");
    t.header({"tenants", "depth", "workers", "jobs", "done", "rej",
              "jobs/s", "gates/s", "p50 ms", "p95 ms", "p99 ms",
              "fill", "hit rate"});

    for (const int tenants : tenant_counts) {
        for (const std::size_t depth : queue_depths) {
            for (const int workers : worker_counts) {
                const QueuedRun best =
                    runQueued(w, shards, tenants, jobs_per_tenant,
                              depth, workers, reps);
                const auto &s = best.stats;
                t.row({std::to_string(tenants),
                       std::to_string(depth),
                       std::to_string(workers),
                       std::to_string(s.submitted),
                       std::to_string(s.completed),
                       std::to_string(s.rejected),
                       Table::num(best.jobsPerSec, 0),
                       Table::num(best.gatesPerSec, 0),
                       Table::num(s.totalLatency.p50 * 1e3, 3),
                       Table::num(s.totalLatency.p95 * 1e3, 3),
                       Table::num(s.totalLatency.p99 * 1e3, 3),
                       Table::num(s.meanBatchFill, 1),
                       Table::num(s.cacheHitRate, 3)});
            }
        }
    }
    report.print(t);

    // The acceptance comparison: queued multi-tenant serving vs the
    // synchronous per-submission loop, equal worker count, same
    // offered load, interleaved measurement passes.
    const int total_jobs = compare_tenants * jobs_per_tenant;
    const int passes = tiny ? 4 : 5;
    const Comparison cmp =
        compareFrontEnds(w, shards, compare_tenants, jobs_per_tenant,
                         compare_workers, passes);
    const double sync_big = runSyncBigBatch(
        w, shards, total_jobs, compare_workers, reps);
    const double ratio =
        cmp.syncGatesPerSec > 0.0
            ? cmp.queuedGatesPerSec / cmp.syncGatesPerSec
            : 0.0;
    std::cout << "\nqueued vs synchronous per-job front end (gates/s,"
              << " " << compare_tenants << " tenants, "
              << compare_workers << " workers): "
              << Table::num(ratio, 2) << "x\n";

    report.metric("queued_gates_per_sec", cmp.queuedGatesPerSec);
    report.metric("queued_jobs_per_sec", cmp.queuedJobsPerSec);
    report.metric("sync_per_job_gates_per_sec",
                  cmp.syncGatesPerSec);
    report.metric("sync_big_batch_gates_per_sec", sync_big);
    report.metric("queued_vs_sync_ratio", ratio);
    report.metric("latency_p50_ms",
                  cmp.queuedStats.totalLatency.p50 * 1e3);
    report.metric("latency_p95_ms",
                  cmp.queuedStats.totalLatency.p95 * 1e3);
    report.metric("latency_p99_ms",
                  cmp.queuedStats.totalLatency.p99 * 1e3);
    report.metric("queue_latency_p95_ms",
                  cmp.queuedStats.queueLatency.p95 * 1e3);
    report.metric("mean_batch_fill", cmp.queuedStats.meanBatchFill);
    report.metric("cache_hit_rate_mixed_tenants",
                  cmp.queuedStats.cacheHitRate);
    report.metric("cache_hits_mixed_tenants",
                  static_cast<double>(cmp.queuedStats.cache.hits));
    report.metric(
        "cache_prefetches_mixed_tenants",
        static_cast<double>(cmp.queuedStats.cache.prefetches));
    report.metric(
        "cache_prefetch_hits_mixed_tenants",
        static_cast<double>(cmp.queuedStats.cache.prefetchHits));

    // Deterministic backpressure segment: hold dispatch, fill the
    // queue to depth, and verify the overflow submissions are
    // rejected-with-status instead of blocking.
    {
        const std::size_t depth = 8;
        const int overflow = 3;
        const runtime::Rack rack(w.dev, w.clib,
                                 rackConfig(w, shards));
        runtime::Server server(rack, {.workers = compare_workers,
                                      .queueDepth = depth,
                                      .maxBatch = 16});
        server.pause();
        std::vector<std::future<runtime::JobResult>> futs;
        for (std::size_t i = 0;
             i < depth + static_cast<std::size_t>(overflow); ++i)
            futs.push_back(server.submit({"overload", w.ping}));
        server.resume();
        server.drain();
        std::size_t rejected = 0, completed = 0;
        for (auto &f : futs) {
            const auto r = f.get();
            rejected += r.status == runtime::JobStatus::Rejected;
            completed += r.status == runtime::JobStatus::Completed;
        }
        std::cout << "backpressure at depth " << depth << ": "
                  << completed << " completed, " << rejected
                  << " rejected of " << futs.size()
                  << " submissions\n";
        report.metric("backpressure_rejected",
                      static_cast<double>(rejected));
        report.metric("backpressure_completed",
                      static_cast<double>(completed));
        report.metric("backpressure_expected_rejected",
                      static_cast<double>(overflow));
    }
    return 0;
}
