/**
 * @file
 * Figure 18: power of a cryogenic CMOS controller channel pair (DAC +
 * waveform memory + IDCT) with uncompressed vs compressed memory.
 * Paper: the 2 mW DAC is a fixed reference; memory power drops >2.5x
 * and the IDCT overhead stays far below the savings.
 *
 * The average words/window figures feeding the model are measured
 * from the guadalupe compressed library, not assumed.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "power/system.hh"

using namespace compaqt;
using namespace compaqt::power;

namespace
{

double
avgWordsPerWindow(const core::CompressedLibrary &clib)
{
    std::size_t words = 0, windows = 0;
    for (const auto &[id, e] : clib.entries()) {
        for (const auto *ch : {&e.cw.i, &e.cw.q}) {
            words += ch->totalWords();
            windows += ch->windows.size();
        }
    }
    return static_cast<double>(words) / static_cast<double>(windows);
}

} // namespace

int
main()
{
    bench::JsonReport report("fig18_asic_power");
    const auto dev = waveform::DeviceModel::ibm("guadalupe");
    const auto lib = waveform::PulseLibrary::build(dev);

    Table t("Fig 18: cryo-controller power per qubit channel pair");
    t.header({"design", "DAC (mW)", "Memory (mW)", "IDCT (mW)",
              "total (mW)", "reduction"});
    const auto base = uncompressedPower();
    t.row({"Uncompressed", Table::num(units::toMW(base.dacW), 2),
           Table::num(units::toMW(base.memoryW), 2),
           Table::num(units::toMW(base.idctW), 2),
           Table::num(units::toMW(base.total()), 2), "1.0x"});

    for (std::size_t ws : {8u, 16u}) {
        const auto clib =
            bench::buildCompressed(lib, "int-dct", ws);
        const double words = avgWordsPerWindow(clib);
        const auto p = compressedPower(ws, words);
        t.row({"int-DCT-W WS=" + std::to_string(ws) + " (" +
                   Table::num(words, 2) + " words/window)",
               Table::num(units::toMW(p.dacW), 2),
               Table::num(units::toMW(p.memoryW), 2),
               Table::num(units::toMW(p.idctW), 2),
               Table::num(units::toMW(p.total()), 2),
               Table::num(base.total() / p.total(), 2) + "x"});
    }
    report.print(t);
    std::cout << "\n(paper: >2.5x total reduction; memory power alone "
                 "drops >3x)\n";
    return 0;
}
