/**
 * @file
 * Unit and property tests for the COMPAQT core: compression round
 * trips and distortion bounds for every codec, channel equalization,
 * Algorithm 1 behaviour, adaptive flat-top compression, and the
 * compressed-library build/serialization path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/adaptive.hh"
#include "core/compressed_library.hh"
#include "core/compressor.hh"
#include "core/decompressor.hh"
#include "core/fidelity_aware.hh"
#include "core/library_compiler.hh"
#include "dsp/metrics.hh"
#include "dsp/simd.hh"
#include "telemetry/metrics.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"
#include "waveform/shapes.hh"

namespace compaqt::core
{
namespace
{

waveform::IqWaveform
testDrag()
{
    return waveform::drag(144, 36.0, 0.2, 1.2);
}

waveform::IqWaveform
testFlatTop()
{
    return waveform::gaussianSquare(1360, 200, 0.12, 0.15);
}

// ------------------------------------------------------------ compressor

class CodecParam
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::size_t>>
{
};

TEST_P(CodecParam, RoundTripMseIsBounded)
{
    const auto [codec, ws] = GetParam();
    CompressorConfig cfg{codec, ws, 1e-3};
    const Compressor comp(cfg);
    const auto wf = testDrag();
    const double err = roundTripMse(comp, wf);
    EXPECT_LT(err, 1e-4) << codec << " ws=" << ws;
}

TEST_P(CodecParam, RatioAtLeastOneOnSmoothPulses)
{
    const auto [codec, ws] = GetParam();
    CompressorConfig cfg{codec, ws, 1e-3};
    const Compressor comp(cfg);
    EXPECT_GE(comp.compress(testDrag()).ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodecParam,
    ::testing::Values(std::tuple{"dct-n", std::size_t{16}},
                      std::tuple{"dct-w", std::size_t{8}},
                      std::tuple{"dct-w", std::size_t{16}},
                      std::tuple{"int-dct", std::size_t{8}},
                      std::tuple{"int-dct", std::size_t{16}},
                      std::tuple{"int-dct", std::size_t{32}}));

TEST(Compressor, ZeroThresholdIsNearLossless)
{
    CompressorConfig cfg{"int-dct", 16, 0.0};
    const Compressor comp(cfg);
    const auto wf = testDrag();
    // Quantization + integer transform rounding only.
    EXPECT_LT(roundTripMse(comp, wf), 1e-7);
}

TEST(Compressor, HigherThresholdCompressesMore)
{
    const auto wf = testFlatTop();
    double prev_ratio = 0.0;
    for (double thr : {1e-4, 1e-3, 1e-2}) {
        CompressorConfig cfg{"int-dct", 16, thr};
        const Compressor comp(cfg);
        const double r = comp.compress(wf).ratio();
        EXPECT_GE(r, prev_ratio);
        prev_ratio = r;
    }
}

TEST(Compressor, ChannelsShareWindowCounts)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const Compressor comp(cfg);
    const auto cw = comp.compress(testDrag());
    ASSERT_EQ(cw.i.windows.size(), cw.q.windows.size());
    for (std::size_t w = 0; w < cw.i.windows.size(); ++w)
        EXPECT_EQ(cw.i.windows[w].words(), cw.q.windows[w].words())
            << "window " << w;
}

TEST(Compressor, WindowInvariantPrefixPlusZeros)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const Compressor comp(cfg);
    const auto cw = comp.compress(testFlatTop());
    for (const auto *ch : {&cw.i, &cw.q})
        for (const auto &w : ch->windows)
            EXPECT_EQ(w.prefixSize() + w.zeros, 16u);
}

TEST(Compressor, DctNUsesSingleWindow)
{
    CompressorConfig cfg{"dct-n", 0, 1e-3};
    const Compressor comp(cfg);
    const auto cw = comp.compress(testDrag());
    EXPECT_EQ(cw.i.windows.size(), 1u);
    EXPECT_EQ(cw.windowSize, 144u);
}

TEST(Compressor, DeltaCodecRoundTrip)
{
    CompressorConfig cfg{"delta", 0, 0.0};
    const Compressor comp(cfg);
    const auto wf = testDrag();
    const auto cw = comp.compress(wf);
    Decompressor dec;
    const auto rt = dec.decompress(cw);
    EXPECT_LT(dsp::mse(wf.i, rt.i), 1e-8);
    EXPECT_LT(dsp::mse(wf.q, rt.q), 1e-8);
    EXPECT_GT(cw.ratio(), 0.9);
}

TEST(Compressor, GaussianSquareBeatsDragCompression)
{
    // 2Q/readout flat-tops are longer and smoother than DRAG 1Q
    // pulses (Section IV-D's observation about qft-4).
    CompressorConfig cfg{"int-dct", 16, 2e-3};
    const Compressor comp(cfg);
    EXPECT_GT(comp.compress(testFlatTop()).ratio(),
              comp.compress(testDrag()).ratio());
}

TEST(Compressor, RejectsBadIntWindowSize)
{
    CompressorConfig cfg{"int-dct", 12, 1e-3};
    EXPECT_DEATH({ Compressor comp(cfg); }, "window size");
}

// ---------------------------------------------------------- decompressor

TEST(Decompressor, ExpandWindowReconstructsLayout)
{
    CompressedWindow w;
    w.icoeffs = {100, -50};
    w.zeros = 14;
    const auto full = Decompressor::expandWindowInt(w, 16);
    ASSERT_EQ(full.size(), 16u);
    EXPECT_EQ(full[0], 100);
    EXPECT_EQ(full[1], -50);
    for (std::size_t i = 2; i < 16; ++i)
        EXPECT_EQ(full[i], 0);
}

TEST(Decompressor, PreservesOriginalLength)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const Compressor comp(cfg);
    // 150 samples: the last window is padded; decode must trim.
    waveform::IqWaveform wf;
    wf.i = waveform::liftedGaussian(150, 40.0, 0.2);
    wf.q.assign(150, 0.0);
    Decompressor dec;
    const auto rt = dec.decompress(comp.compress(wf));
    EXPECT_EQ(rt.i.size(), 150u);
    EXPECT_EQ(rt.q.size(), 150u);
}

// -------------------------------------------------------- fidelity-aware

TEST(FidelityAware, MeetsMseTarget)
{
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    cfg.targetMse = 1e-6;
    const auto r = compressFidelityAware(testDrag(), cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.mse, 1e-6);
    EXPECT_GT(r.iterations, 0);
}

TEST(FidelityAware, TighterTargetCompressesLess)
{
    FidelityAwareConfig loose, tight;
    loose.base.codec = tight.base.codec = "int-dct";
    loose.base.windowSize = tight.base.windowSize = 16;
    loose.targetMse = 1e-5;
    tight.targetMse = 1e-8;
    const auto wf = testDrag();
    const auto rl = compressFidelityAware(wf, loose);
    const auto rt = compressFidelityAware(wf, tight);
    EXPECT_GE(rl.compressed.ratio(), rt.compressed.ratio());
    EXPECT_LE(rt.mse, 1e-8);
}

TEST(FidelityAware, ThresholdHalvesUntilConverged)
{
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    cfg.targetMse = 1e-7;
    cfg.initialThreshold = 0.05;
    const auto r = compressFidelityAware(testDrag(), cfg);
    // Returned threshold is initial / 2^(iterations-1).
    EXPECT_NEAR(r.threshold,
                0.05 / std::ldexp(1.0, r.iterations - 1), 1e-12);
}

TEST(FidelityAware, ImpossibleTargetReportsNonConvergence)
{
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    // Below the integer quantization floor: unreachable.
    cfg.targetMse = 1e-14;
    const auto r = compressFidelityAware(testDrag(), cfg);
    EXPECT_FALSE(r.converged);
    EXPECT_GT(r.mse, 1e-14);
}

// -------------------------------------------------------------- adaptive

TEST(Adaptive, FlatTopSplitsIntoThreeSegments)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto ac = comp.compress(testFlatTop());
    ASSERT_EQ(ac.i.segments.size(), 3u);
    EXPECT_FALSE(ac.i.segments[0].isFlat);
    EXPECT_TRUE(ac.i.segments[1].isFlat);
    EXPECT_FALSE(ac.i.segments[2].isFlat);
}

TEST(Adaptive, RoundTripMatchesOriginal)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto wf = testFlatTop();
    const auto ac = comp.compress(wf);
    const Decompressor dec;
    const auto rt = dec.decompress(ac);
    EXPECT_LT(dsp::mse(wf.i, rt.i), 1e-5);
    EXPECT_LT(dsp::mse(wf.q, rt.q), 1e-5);
    EXPECT_EQ(rt.i.size(), wf.i.size());
}

TEST(Adaptive, WindowDecodeMatchesChannelDecode)
{
    // The window-level adaptive path (what the runtime cache uses)
    // must slice exactly like the whole-channel decode.
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto ac = comp.compress(testFlatTop());
    ASSERT_TRUE(ac.i.isAdaptive());
    const Decompressor dec;
    const auto golden = dec.decompressChannel(ac.i, ac.codec);
    std::vector<double> window(16);
    std::vector<double> assembled;
    for (std::size_t w = 0; w < ac.i.numWindows(); ++w) {
        const auto n = dec.decompressWindowInto(ac.i, ac.codec, w,
                                                window);
        assembled.insert(assembled.end(), window.begin(),
                         window.begin() +
                             static_cast<std::ptrdiff_t>(n));
    }
    EXPECT_EQ(assembled, golden);
}

TEST(Adaptive, BatchDecodeMatchesWindowDecodeAcrossBackends)
{
    // The Decompressor batch face must split an adaptive channel at
    // segment boundaries (flat runs -> constant fill, ramp runs ->
    // one codec batch) and still reassemble bit-identically to the
    // per-window path, at every batch size and on every supported
    // SIMD backend (the adaptive channel is integer-codec backed, so
    // backend identity is exact). Each batch call must also tick the
    // decode.kernel telemetry counters.
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto ac = comp.compress(testFlatTop());
    ASSERT_TRUE(ac.i.isAdaptive());
    const Decompressor dec;
    const std::size_t nwin = ac.i.numWindows();

    std::vector<double> golden;
    std::vector<double> window(16);
    for (std::size_t w = 0; w < nwin; ++w) {
        const auto n =
            dec.decompressWindowInto(ac.i, ac.codec, w, window);
        golden.insert(golden.end(), window.begin(),
                      window.begin() +
                          static_cast<std::ptrdiff_t>(n));
    }

    auto &batches =
        telemetry::Registry::global().counter("decode.kernel.batches");
    auto &windows =
        telemetry::Registry::global().counter("decode.kernel.windows");
    const auto batches0 = batches.value();
    const auto windows0 = windows.value();

    for (const std::size_t k : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}, nwin}) {
        std::vector<double> assembled(golden.size(), -7.0);
        std::size_t written = 0;
        for (std::size_t w = 0; w < nwin;) {
            const std::size_t run = std::min(k, nwin - w);
            written += dec.decodeWindowsInto(
                ac.i, ac.codec, w, run,
                SampleSpan(assembled).subspan(written));
            w += run;
        }
        ASSERT_EQ(written, golden.size());
        ASSERT_EQ(assembled, golden) << "k=" << k;
    }
    EXPECT_GT(batches.value(), batches0);
    EXPECT_GE(windows.value(), windows0 + 4 * nwin);

    // Backend sweep: integer adaptive decode is bit-exact.
    const auto ambient = dsp::simd::activeBackend();
    for (dsp::simd::Backend b :
         {dsp::simd::Backend::Scalar, dsp::simd::Backend::Avx2,
          dsp::simd::Backend::Neon}) {
        if (!dsp::simd::backendSupported(b))
            continue;
        dsp::simd::setBackend(b);
        std::vector<double> out(golden.size(), -7.0);
        dec.decodeWindowsInto(ac.i, ac.codec, 0, nwin,
                              SampleSpan(out));
        EXPECT_EQ(out, golden)
            << "backend " << dsp::simd::backendName(b);
    }
    dsp::simd::setBackend(ambient);
}

TEST(Adaptive, BypassCoversTheFlatRegion)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto ac = comp.compress(testFlatTop());
    // The 1360-sample pulse has ~960 flat samples; window alignment
    // keeps at least 900 of them on the bypass path.
    EXPECT_GT(ac.i.bypassSamples(), 900u);
    EXPECT_EQ(ac.i.bypassSamples() + ac.i.idctSamples(),
              16u * ((ac.i.idctSamples() / 16) +
                     ac.i.bypassSamples() / 16));
}

TEST(Adaptive, BeatsPlainCompressionOnFlatTops)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor acomp(cfg);
    const Compressor comp(cfg);
    const auto wf = testFlatTop();
    EXPECT_GT(acomp.compress(wf).ratio(),
              comp.compress(wf).ratio());
}

TEST(Adaptive, PureGaussianStaysPlain)
{
    // No qualifying flat run: the plain windowed representation is
    // returned unchanged, so planners can test isAdaptive().
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto ac = comp.compress(testDrag());
    EXPECT_FALSE(ac.i.isAdaptive());
    EXPECT_FALSE(ac.q.isAdaptive());
    EXPECT_EQ(ac.i.bypassSamples(), 0u);
    EXPECT_FALSE(ac.i.windows.empty());
}

// ---------------------------------------------------- compressed library

TEST(CompressedLibrary, BuildCoversAllGates)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    const auto clib = CompressedLibrary::build(lib, cfg);
    EXPECT_EQ(clib.size(), lib.size());
    for (const auto &[id, wf] : lib.entries()) {
        ASSERT_TRUE(clib.contains(id));
        EXPECT_TRUE(clib.entry(id).converged);
    }
}

TEST(CompressedLibrary, PaperOperatingPoint)
{
    // The headline numbers of Section VII-A at the default target:
    // worst window <= 3 words, per-gate R in [5.33-ish, 8.3].
    const auto dev = waveform::DeviceModel::ibm("guadalupe");
    const auto lib = waveform::PulseLibrary::build(dev);
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    const auto clib = CompressedLibrary::build(lib, cfg);
    EXPECT_LE(clib.worstCaseWindowWords(), 3u);
    const auto rs = clib.ratios();
    const double min_r = *std::min_element(rs.begin(), rs.end());
    const double max_r = *std::max_element(rs.begin(), rs.end());
    EXPECT_GT(min_r, 4.5);
    EXPECT_LT(max_r, 9.0);
    EXPECT_GT(clib.ratio(), 5.0);
}

TEST(CompressedLibrary, SerializationRoundTrips)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    auto clib = CompressedLibrary::build(lib, cfg);
    // The calibration-epoch stamp rides the container format (v5+).
    clib.setVersion(42);

    std::stringstream ss;
    clib.save(ss);
    const auto loaded = CompressedLibrary::load(ss);
    ASSERT_EQ(loaded.size(), clib.size());
    EXPECT_EQ(loaded.version(), 42u);

    Decompressor dec;
    for (const auto &[id, e] : clib.entries()) {
        ASSERT_TRUE(loaded.contains(id));
        const auto &l = loaded.entry(id);
        EXPECT_DOUBLE_EQ(l.threshold, e.threshold);
        EXPECT_DOUBLE_EQ(l.mse, e.mse);
        // Decoded waveforms are bit-identical.
        const auto a = dec.decompress(e.cw);
        const auto b = dec.decompress(l.cw);
        EXPECT_EQ(a.i, b.i);
        EXPECT_EQ(a.q, b.q);
    }
}

TEST(CompressedLibrary, LoadRejectsGarbage)
{
    std::stringstream ss;
    ss << "not a compressed library";
    EXPECT_DEATH({ auto l = CompressedLibrary::load(ss); }, "magic");
}

// -------------------------------------------------- library compile plane

/** A small flat-top-heavy device library: CR-style CX pulses with a
 *  long constant middle plus DRAG 1Q gates. */
waveform::PulseLibrary
flatTopHeavyLibrary()
{
    waveform::PulseLibrary lib;
    for (int q = 0; q < 3; ++q) {
        lib.insert({waveform::GateType::X, q, -1},
                   waveform::drag(160, 40.0, 0.15 + 0.01 * q, 0.8));
        lib.insert({waveform::GateType::CX, q, q + 1},
                   waveform::gaussianSquare(1360, 200,
                                            0.10 + 0.01 * q, 0.12));
    }
    // A mixed-representation gate: flat-top I, Hann Q with no flat
    // run — the planner must be able to ship I adaptive and Q plain.
    waveform::IqWaveform mixed =
        waveform::gaussianSquare(1360, 200, 0.11, 0.0);
    mixed.q = waveform::raisedCosine(1360, 0.08);
    lib.insert({waveform::GateType::Measure, 0, -1},
               std::move(mixed));
    return lib;
}

LibraryCompilerConfig
compilerConfig(bool plan, int workers)
{
    LibraryCompilerConfig cfg;
    cfg.fidelity.base.codec = "int-dct";
    cfg.fidelity.base.windowSize = 16;
    cfg.planPerChannel = plan;
    cfg.workers = workers;
    return cfg;
}

std::string
serialized(const CompressedLibrary &lib)
{
    std::stringstream ss;
    lib.save(ss);
    return ss.str();
}

TEST(LibraryCompiler, WorkerCountDoesNotChangeTheLibrary)
{
    const auto lib = flatTopHeavyLibrary();
    const auto one =
        LibraryCompiler(compilerConfig(true, 1)).compile(lib);
    const auto eight =
        LibraryCompiler(compilerConfig(true, 8)).compile(lib);
    // Bit-identical serialized bytes, not just equal stats.
    EXPECT_EQ(serialized(one.library), serialized(eight.library));
    EXPECT_EQ(one.stats.plannedWords, eight.stats.plannedWords);
    EXPECT_EQ(one.stats.adaptiveChannels,
              eight.stats.adaptiveChannels);
    EXPECT_EQ(eight.stats.workers, 8);
}

TEST(LibraryCompiler, PerChannelPlanningSavesWordsOnFlatTops)
{
    const auto lib = flatTopHeavyLibrary();
    const auto plain =
        LibraryCompiler(compilerConfig(false, 1)).compile(lib);
    const auto planned =
        LibraryCompiler(compilerConfig(true, 2)).compile(lib);

    // Planning never runs when disabled...
    EXPECT_EQ(plain.stats.adaptiveChannels, 0u);
    EXPECT_EQ(plain.stats.plannedWords, plain.stats.windowCodecWords);
    // ...and on a flat-top-heavy library it ships adaptive channels
    // that cost strictly fewer memory words.
    EXPECT_GT(planned.stats.adaptiveChannels, 0u);
    EXPECT_LT(planned.stats.plannedWords,
              plain.stats.plannedWords);
    EXPECT_GT(planned.stats.wordsSavedFraction(), 0.0);

    // Every shipped representation still meets the MSE target.
    Decompressor dec;
    for (const auto &[id, e] : planned.library.entries()) {
        const auto &wf = lib.waveform(id);
        const auto rt = dec.decompress(e.cw);
        const double worst =
            std::max(dsp::mse(wf.i, rt.i), dsp::mse(wf.q, rt.q));
        EXPECT_LE(worst, compilerConfig(true, 1).fidelity.targetMse)
            << waveform::toString(id);
        EXPECT_NEAR(e.mse, worst, 1e-12);
        // When exactly one channel ships adaptively, the surviving
        // plain channel must have shed its equalization padding:
        // no explicit trailing zeros left in any window prefix.
        if (e.cw.i.isAdaptive() != e.cw.q.isAdaptive()) {
            const auto &plainCh =
                e.cw.i.isAdaptive() ? e.cw.q : e.cw.i;
            for (const auto &w : plainCh.windows)
                if (!w.icoeffs.empty())
                    EXPECT_NE(w.icoeffs.back(), 0)
                        << waveform::toString(id);
        }
    }
    // The fixture's Measure gate exists to pin the mixed case down.
    const auto &mixed =
        planned.library.entry({waveform::GateType::Measure, 0, -1});
    EXPECT_TRUE(mixed.cw.i.isAdaptive());
    EXPECT_FALSE(mixed.cw.q.isAdaptive());
}

TEST(LibraryCompiler, PlanningIsANoOpForNonIntegerCodecs)
{
    auto cfg = compilerConfig(true, 2);
    cfg.fidelity.base.codec = "dct-w";
    const auto r = LibraryCompiler(cfg).compile(flatTopHeavyLibrary());
    EXPECT_EQ(r.stats.adaptiveChannels, 0u);
    EXPECT_EQ(r.stats.plannedWords, r.stats.windowCodecWords);
}

TEST(LibraryCompiler, PlannedLibrarySerializationRoundTrips)
{
    const auto lib = flatTopHeavyLibrary();
    const auto planned =
        LibraryCompiler(compilerConfig(true, 2)).compile(lib);
    ASSERT_GT(planned.stats.adaptiveChannels, 0u);

    std::stringstream ss;
    planned.library.save(ss);
    const auto loaded = CompressedLibrary::load(ss);
    ASSERT_EQ(loaded.size(), planned.library.size());
    // A second save produces the same bytes (stable v4 encoding)...
    EXPECT_EQ(serialized(loaded), serialized(planned.library));
    // ...and adaptive channels decode bit-identically after the trip.
    Decompressor dec;
    for (const auto &[id, e] : planned.library.entries()) {
        const auto a = dec.decompress(e.cw);
        const auto b = dec.decompress(loaded.entry(id).cw);
        EXPECT_EQ(a.i, b.i);
        EXPECT_EQ(a.q, b.q);
    }
}

// ------------------------------------- golden-bytes format migration

/** Byte-level writers replicating the historical v1-v3 encoders. */
template <typename T>
void
put(std::string &s, T v)
{
    s.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
void
putVector(std::string &s, const std::vector<T> &v)
{
    put<std::uint64_t>(s, v.size());
    if (!v.empty())
        s.append(reinterpret_cast<const char *>(v.data()),
                 v.size() * sizeof(T));
}

void
putLegacyDelta(std::string &s, std::uint16_t base,
               std::int32_t width, std::uint64_t count,
               const std::vector<std::int32_t> &deltas)
{
    put<std::uint16_t>(s, base);
    put<std::int32_t>(s, width);
    put<std::uint64_t>(s, count);
    put<std::uint8_t>(s, 0); // hasZeroCrossing
    putVector(s, deltas);
}

/** A plain one-window int-dct channel body as v1-v3 wrote it. */
void
putIntChannel(std::string &s, std::uint64_t num_samples,
              const std::vector<std::int32_t> &icoeffs,
              std::uint32_t zeros, bool with_v3_delta)
{
    put<std::uint64_t>(s, num_samples);
    put<std::uint64_t>(s, 4); // windowSize
    put<std::uint64_t>(s, 1); // one window
    putVector<double>(s, {}); // fcoeffs
    putVector(s, icoeffs);
    put<std::uint32_t>(s, zeros);
    if (with_v3_delta) {
        putLegacyDelta(s, 0, 0, 0, {});
        put<std::uint64_t>(s, 0);   // checkpointStride
        putVector<std::uint16_t>(s, {}); // checkpoints
    }
}

void
putEntryHeader(std::string &s, std::uint8_t gate_type,
               std::int32_t q0, std::int32_t q1, double threshold,
               double mse)
{
    put<std::uint8_t>(s, gate_type);
    put<std::int32_t>(s, q0);
    put<std::int32_t>(s, q1);
    put<double>(s, threshold);
    put<double>(s, mse);
    put<std::uint8_t>(s, 1); // converged
}

constexpr std::uint32_t kGoldenMagic = 0x43505154;

/** Field-level equality of two libraries (CompressedChannel has no
 *  operator==; compare what serialization preserves). */
void
expectSameLibrary(const CompressedLibrary &a,
                  const CompressedLibrary &b)
{
    ASSERT_EQ(a.size(), b.size());
    auto ia = a.entries().begin();
    for (const auto &[id, eb] : b.entries()) {
        const auto &[ida, ea] = *ia++;
        EXPECT_EQ(ida, id);
        EXPECT_DOUBLE_EQ(ea.threshold, eb.threshold);
        EXPECT_DOUBLE_EQ(ea.mse, eb.mse);
        EXPECT_EQ(ea.cw.codec, eb.cw.codec);
        EXPECT_EQ(ea.cw.windowSize, eb.cw.windowSize);
        const CompressedChannel *chans[2][2] = {{&ea.cw.i, &eb.cw.i},
                                                {&ea.cw.q, &eb.cw.q}};
        for (const auto &pair : chans) {
            const auto &ca = *pair[0];
            const auto &cb = *pair[1];
            EXPECT_EQ(ca.numSamples, cb.numSamples);
            EXPECT_EQ(ca.windowSize, cb.windowSize);
            ASSERT_EQ(ca.windows.size(), cb.windows.size());
            for (std::size_t w = 0; w < ca.windows.size(); ++w) {
                EXPECT_EQ(ca.windows[w].icoeffs,
                          cb.windows[w].icoeffs);
                EXPECT_EQ(ca.windows[w].fcoeffs,
                          cb.windows[w].fcoeffs);
                EXPECT_EQ(ca.windows[w].zeros, cb.windows[w].zeros);
            }
            EXPECT_EQ(ca.delta.base, cb.delta.base);
            EXPECT_EQ(ca.delta.originalCount,
                      cb.delta.originalCount);
            EXPECT_EQ(ca.delta.deltas, cb.delta.deltas);
            EXPECT_EQ(ca.segments.size(), cb.segments.size());
        }
    }
}

/** Load a hand-crafted legacy blob, re-save (v4), reload: the
 *  migrated library must survive the v4 round trip unchanged. */
void
expectMigratesToV4(const std::string &blob)
{
    std::stringstream in(blob);
    const auto loaded = CompressedLibrary::load(in);
    std::stringstream out;
    loaded.save(out);
    const auto again = CompressedLibrary::load(out);
    expectSameLibrary(loaded, again);
}

TEST(LibraryMigration, GoldenV1BlobLoadsAndRoundTripsIntoV4)
{
    std::string s;
    put<std::uint32_t>(s, kGoldenMagic);
    put<std::uint32_t>(s, 1); // version
    put<std::uint64_t>(s, 1); // one entry
    putEntryHeader(s, 0 /* X */, 0, -1, 0.0125, 3.1e-6);
    put<std::uint8_t>(s, 3); // v1 codec enum: int-dct
    put<std::uint64_t>(s, 4); // waveform windowSize
    putIntChannel(s, 4, {812, -44}, 2, false);
    putIntChannel(s, 4, {37}, 3, false);
    // v1 trailer: waveform-level legacy delta pair (empty).
    putLegacyDelta(s, 0, 0, 0, {});
    putLegacyDelta(s, 0, 0, 0, {});

    std::stringstream in(s);
    const auto lib = CompressedLibrary::load(in);
    ASSERT_EQ(lib.size(), 1u);
    const auto &e =
        lib.entry({waveform::GateType::X, 0, -1});
    EXPECT_EQ(e.cw.codec, "int-dct"); // enum index migrated to name
    EXPECT_DOUBLE_EQ(e.threshold, 0.0125);
    ASSERT_EQ(e.cw.i.windows.size(), 1u);
    EXPECT_EQ(e.cw.i.windows[0].icoeffs,
              (std::vector<std::int32_t>{812, -44}));
    EXPECT_FALSE(e.cw.i.isAdaptive());
    expectMigratesToV4(s);
}

TEST(LibraryMigration, GoldenV1DeltaBlobRecoversNumSamples)
{
    std::string s;
    put<std::uint32_t>(s, kGoldenMagic);
    put<std::uint32_t>(s, 1);
    put<std::uint64_t>(s, 1);
    putEntryHeader(s, 1 /* SX */, 2, -1, 0.05, 1.2e-7);
    put<std::uint8_t>(s, 0); // v1 codec enum: delta
    put<std::uint64_t>(s, 0); // windowSize
    // Empty channel bodies (delta entries stored no windows)...
    putIntChannel(s, 0, {}, 0, false);
    putIntChannel(s, 0, {}, 0, false);
    // ...with the payload in the waveform-level trailer.
    putLegacyDelta(s, 16384, 6, 5, {3, -2, 1, 0});
    putLegacyDelta(s, 8192, 4, 5, {1, 1, -1, 2});

    std::stringstream in(s);
    const auto lib = CompressedLibrary::load(in);
    const auto &e = lib.entry({waveform::GateType::SX, 2, -1});
    EXPECT_EQ(e.cw.codec, "delta");
    // The waveform-level trailer migrated into the channels and
    // numSamples was recovered from the payload.
    EXPECT_EQ(e.cw.i.delta.originalCount, 5u);
    EXPECT_EQ(e.cw.i.numSamples, 5u);
    EXPECT_EQ(e.cw.i.delta.deltas,
              (std::vector<std::int32_t>{3, -2, 1, 0}));
    expectMigratesToV4(s);
}

TEST(LibraryMigration, GoldenV2BlobLoadsAndRoundTripsIntoV4)
{
    std::string s;
    put<std::uint32_t>(s, kGoldenMagic);
    put<std::uint32_t>(s, 2); // version: codec stored by name
    put<std::uint64_t>(s, 1);
    putEntryHeader(s, 2 /* CX */, 1, 4, 0.025, 9.9e-6);
    put<std::uint8_t>(s, 7); // name length
    s.append("int-dct");
    put<std::uint64_t>(s, 4);
    putIntChannel(s, 7, {301, 12, -9}, 1, false);
    putIntChannel(s, 7, {-45, 3}, 2, false);
    putLegacyDelta(s, 0, 0, 0, {});
    putLegacyDelta(s, 0, 0, 0, {});

    std::stringstream in(s);
    const auto lib = CompressedLibrary::load(in);
    const auto &e = lib.entry({waveform::GateType::CX, 1, 4});
    EXPECT_EQ(e.cw.codec, "int-dct");
    EXPECT_EQ(e.cw.q.windows[0].icoeffs,
              (std::vector<std::int32_t>{-45, 3}));
    // Stored window records win over the derived count; the single
    // window clamps to ws, numSamples stays authoritative.
    EXPECT_EQ(e.cw.i.numWindows(), 1u);
    EXPECT_EQ(e.cw.i.numSamples, 7u);
    EXPECT_EQ(e.cw.i.windowSamples(0), 4u);
    expectMigratesToV4(s);
}

TEST(LibraryMigration, CorruptV4SegmentTrailerDiesLoudly)
{
    // A hostile v4 stream whose flat segment claims a million
    // samples against a 32-sample channel must die at load — not as
    // an out-of-bounds write during playback.
    std::string s;
    put<std::uint32_t>(s, kGoldenMagic);
    put<std::uint32_t>(s, 4);
    put<std::uint64_t>(s, 1);
    putEntryHeader(s, 0 /* X */, 0, -1, 0.01, 1e-6);
    put<std::uint8_t>(s, 7);
    s.append("int-dct");
    put<std::uint64_t>(s, 16); // waveform windowSize
    // I channel body: adaptive (no top-level windows).
    put<std::uint64_t>(s, 32); // numSamples
    put<std::uint64_t>(s, 16); // windowSize
    put<std::uint64_t>(s, 0);  // no windows
    putLegacyDelta(s, 0, 0, 0, {});
    put<std::uint64_t>(s, 0);            // checkpointStride
    putVector<std::uint16_t>(s, {});     // checkpoints
    // Segment trailer: one flat segment with a hostile count.
    put<std::uint64_t>(s, 1);
    put<std::uint8_t>(s, 1);
    put<double>(s, 0.5);
    put<std::uint64_t>(s, 1000000);
    // Nested (empty) ramp body.
    put<std::uint64_t>(s, 0);
    put<std::uint64_t>(s, 0);
    put<std::uint64_t>(s, 0);
    putLegacyDelta(s, 0, 0, 0, {});
    put<std::uint64_t>(s, 0);
    putVector<std::uint16_t>(s, {});

    std::stringstream in(s);
    EXPECT_DEATH({ auto l = CompressedLibrary::load(in); },
                 "overrun");
}

TEST(LibraryMigration, GoldenV3BlobLoadsAndRoundTripsIntoV4)
{
    std::string s;
    put<std::uint32_t>(s, kGoldenMagic);
    put<std::uint32_t>(s, 3); // version: per-channel delta records
    put<std::uint64_t>(s, 1);
    putEntryHeader(s, 3 /* Measure */, 5, -1, 0.00625, 4.4e-8);
    put<std::uint8_t>(s, 7);
    s.append("int-dct");
    put<std::uint64_t>(s, 4);
    putIntChannel(s, 4, {650}, 3, true);
    putIntChannel(s, 4, {649, -1}, 2, true);

    std::stringstream in(s);
    const auto lib = CompressedLibrary::load(in);
    const auto &e = lib.entry({waveform::GateType::Measure, 5, -1});
    ASSERT_EQ(e.cw.i.windows.size(), 1u);
    EXPECT_EQ(e.cw.i.windows[0].zeros, 3u);
    // v3 predates the adaptive variant: channels load plain.
    EXPECT_FALSE(e.cw.i.isAdaptive());
    EXPECT_FALSE(e.cw.q.isAdaptive());
    expectMigratesToV4(s);
}

} // namespace
} // namespace compaqt::core
