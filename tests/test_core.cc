/**
 * @file
 * Unit and property tests for the COMPAQT core: compression round
 * trips and distortion bounds for every codec, channel equalization,
 * Algorithm 1 behaviour, adaptive flat-top compression, and the
 * compressed-library build/serialization path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/adaptive.hh"
#include "core/compressed_library.hh"
#include "core/compressor.hh"
#include "core/decompressor.hh"
#include "core/fidelity_aware.hh"
#include "dsp/metrics.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"
#include "waveform/shapes.hh"

namespace compaqt::core
{
namespace
{

waveform::IqWaveform
testDrag()
{
    return waveform::drag(144, 36.0, 0.2, 1.2);
}

waveform::IqWaveform
testFlatTop()
{
    return waveform::gaussianSquare(1360, 200, 0.12, 0.15);
}

// ------------------------------------------------------------ compressor

class CodecParam
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::size_t>>
{
};

TEST_P(CodecParam, RoundTripMseIsBounded)
{
    const auto [codec, ws] = GetParam();
    CompressorConfig cfg{codec, ws, 1e-3};
    const Compressor comp(cfg);
    const auto wf = testDrag();
    const double err = roundTripMse(comp, wf);
    EXPECT_LT(err, 1e-4) << codec << " ws=" << ws;
}

TEST_P(CodecParam, RatioAtLeastOneOnSmoothPulses)
{
    const auto [codec, ws] = GetParam();
    CompressorConfig cfg{codec, ws, 1e-3};
    const Compressor comp(cfg);
    EXPECT_GE(comp.compress(testDrag()).ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodecParam,
    ::testing::Values(std::tuple{"dct-n", std::size_t{16}},
                      std::tuple{"dct-w", std::size_t{8}},
                      std::tuple{"dct-w", std::size_t{16}},
                      std::tuple{"int-dct", std::size_t{8}},
                      std::tuple{"int-dct", std::size_t{16}},
                      std::tuple{"int-dct", std::size_t{32}}));

TEST(Compressor, ZeroThresholdIsNearLossless)
{
    CompressorConfig cfg{"int-dct", 16, 0.0};
    const Compressor comp(cfg);
    const auto wf = testDrag();
    // Quantization + integer transform rounding only.
    EXPECT_LT(roundTripMse(comp, wf), 1e-7);
}

TEST(Compressor, HigherThresholdCompressesMore)
{
    const auto wf = testFlatTop();
    double prev_ratio = 0.0;
    for (double thr : {1e-4, 1e-3, 1e-2}) {
        CompressorConfig cfg{"int-dct", 16, thr};
        const Compressor comp(cfg);
        const double r = comp.compress(wf).ratio();
        EXPECT_GE(r, prev_ratio);
        prev_ratio = r;
    }
}

TEST(Compressor, ChannelsShareWindowCounts)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const Compressor comp(cfg);
    const auto cw = comp.compress(testDrag());
    ASSERT_EQ(cw.i.windows.size(), cw.q.windows.size());
    for (std::size_t w = 0; w < cw.i.windows.size(); ++w)
        EXPECT_EQ(cw.i.windows[w].words(), cw.q.windows[w].words())
            << "window " << w;
}

TEST(Compressor, WindowInvariantPrefixPlusZeros)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const Compressor comp(cfg);
    const auto cw = comp.compress(testFlatTop());
    for (const auto *ch : {&cw.i, &cw.q})
        for (const auto &w : ch->windows)
            EXPECT_EQ(w.prefixSize() + w.zeros, 16u);
}

TEST(Compressor, DctNUsesSingleWindow)
{
    CompressorConfig cfg{"dct-n", 0, 1e-3};
    const Compressor comp(cfg);
    const auto cw = comp.compress(testDrag());
    EXPECT_EQ(cw.i.windows.size(), 1u);
    EXPECT_EQ(cw.windowSize, 144u);
}

TEST(Compressor, DeltaCodecRoundTrip)
{
    CompressorConfig cfg{"delta", 0, 0.0};
    const Compressor comp(cfg);
    const auto wf = testDrag();
    const auto cw = comp.compress(wf);
    Decompressor dec;
    const auto rt = dec.decompress(cw);
    EXPECT_LT(dsp::mse(wf.i, rt.i), 1e-8);
    EXPECT_LT(dsp::mse(wf.q, rt.q), 1e-8);
    EXPECT_GT(cw.ratio(), 0.9);
}

TEST(Compressor, GaussianSquareBeatsDragCompression)
{
    // 2Q/readout flat-tops are longer and smoother than DRAG 1Q
    // pulses (Section IV-D's observation about qft-4).
    CompressorConfig cfg{"int-dct", 16, 2e-3};
    const Compressor comp(cfg);
    EXPECT_GT(comp.compress(testFlatTop()).ratio(),
              comp.compress(testDrag()).ratio());
}

TEST(Compressor, RejectsBadIntWindowSize)
{
    CompressorConfig cfg{"int-dct", 12, 1e-3};
    EXPECT_DEATH({ Compressor comp(cfg); }, "window size");
}

// ---------------------------------------------------------- decompressor

TEST(Decompressor, ExpandWindowReconstructsLayout)
{
    CompressedWindow w;
    w.icoeffs = {100, -50};
    w.zeros = 14;
    const auto full = Decompressor::expandWindowInt(w, 16);
    ASSERT_EQ(full.size(), 16u);
    EXPECT_EQ(full[0], 100);
    EXPECT_EQ(full[1], -50);
    for (std::size_t i = 2; i < 16; ++i)
        EXPECT_EQ(full[i], 0);
}

TEST(Decompressor, PreservesOriginalLength)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const Compressor comp(cfg);
    // 150 samples: the last window is padded; decode must trim.
    waveform::IqWaveform wf;
    wf.i = waveform::liftedGaussian(150, 40.0, 0.2);
    wf.q.assign(150, 0.0);
    Decompressor dec;
    const auto rt = dec.decompress(comp.compress(wf));
    EXPECT_EQ(rt.i.size(), 150u);
    EXPECT_EQ(rt.q.size(), 150u);
}

// -------------------------------------------------------- fidelity-aware

TEST(FidelityAware, MeetsMseTarget)
{
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    cfg.targetMse = 1e-6;
    const auto r = compressFidelityAware(testDrag(), cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.mse, 1e-6);
    EXPECT_GT(r.iterations, 0);
}

TEST(FidelityAware, TighterTargetCompressesLess)
{
    FidelityAwareConfig loose, tight;
    loose.base.codec = tight.base.codec = "int-dct";
    loose.base.windowSize = tight.base.windowSize = 16;
    loose.targetMse = 1e-5;
    tight.targetMse = 1e-8;
    const auto wf = testDrag();
    const auto rl = compressFidelityAware(wf, loose);
    const auto rt = compressFidelityAware(wf, tight);
    EXPECT_GE(rl.compressed.ratio(), rt.compressed.ratio());
    EXPECT_LE(rt.mse, 1e-8);
}

TEST(FidelityAware, ThresholdHalvesUntilConverged)
{
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    cfg.targetMse = 1e-7;
    cfg.initialThreshold = 0.05;
    const auto r = compressFidelityAware(testDrag(), cfg);
    // Returned threshold is initial / 2^(iterations-1).
    EXPECT_NEAR(r.threshold,
                0.05 / std::ldexp(1.0, r.iterations - 1), 1e-12);
}

TEST(FidelityAware, ImpossibleTargetReportsNonConvergence)
{
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    // Below the integer quantization floor: unreachable.
    cfg.targetMse = 1e-14;
    const auto r = compressFidelityAware(testDrag(), cfg);
    EXPECT_FALSE(r.converged);
    EXPECT_GT(r.mse, 1e-14);
}

// -------------------------------------------------------------- adaptive

TEST(Adaptive, FlatTopSplitsIntoThreeSegments)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto ac = comp.compress(testFlatTop());
    ASSERT_EQ(ac.i.segments.size(), 3u);
    EXPECT_FALSE(ac.i.segments[0].isFlat);
    EXPECT_TRUE(ac.i.segments[1].isFlat);
    EXPECT_FALSE(ac.i.segments[2].isFlat);
}

TEST(Adaptive, RoundTripMatchesOriginal)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto wf = testFlatTop();
    const auto ac = comp.compress(wf);
    const auto rt = AdaptiveCompressor::decompress(ac);
    EXPECT_LT(dsp::mse(wf.i, rt.i), 1e-5);
    EXPECT_LT(dsp::mse(wf.q, rt.q), 1e-5);
    EXPECT_EQ(rt.i.size(), wf.i.size());
}

TEST(Adaptive, BypassCoversTheFlatRegion)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto ac = comp.compress(testFlatTop());
    // The 1360-sample pulse has ~960 flat samples; window alignment
    // keeps at least 900 of them on the bypass path.
    EXPECT_GT(ac.i.bypassSamples(), 900u);
    EXPECT_EQ(ac.i.bypassSamples() + ac.i.idctSamples(),
              16u * ((ac.i.idctSamples() / 16) +
                     ac.i.bypassSamples() / 16));
}

TEST(Adaptive, BeatsPlainCompressionOnFlatTops)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor acomp(cfg);
    const Compressor comp(cfg);
    const auto wf = testFlatTop();
    EXPECT_GT(acomp.compress(wf).ratio(),
              comp.compress(wf).ratio());
}

TEST(Adaptive, PureGaussianHasNoFlatSegment)
{
    CompressorConfig cfg{"int-dct", 16, 1e-3};
    const AdaptiveCompressor comp(cfg);
    const auto ac = comp.compress(testDrag());
    ASSERT_EQ(ac.i.segments.size(), 1u);
    EXPECT_FALSE(ac.i.segments[0].isFlat);
    EXPECT_EQ(ac.i.bypassSamples(), 0u);
}

// ---------------------------------------------------- compressed library

TEST(CompressedLibrary, BuildCoversAllGates)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    const auto clib = CompressedLibrary::build(lib, cfg);
    EXPECT_EQ(clib.size(), lib.size());
    for (const auto &[id, wf] : lib.entries()) {
        ASSERT_TRUE(clib.contains(id));
        EXPECT_TRUE(clib.entry(id).converged);
    }
}

TEST(CompressedLibrary, PaperOperatingPoint)
{
    // The headline numbers of Section VII-A at the default target:
    // worst window <= 3 words, per-gate R in [5.33-ish, 8.3].
    const auto dev = waveform::DeviceModel::ibm("guadalupe");
    const auto lib = waveform::PulseLibrary::build(dev);
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    const auto clib = CompressedLibrary::build(lib, cfg);
    EXPECT_LE(clib.worstCaseWindowWords(), 3u);
    const auto rs = clib.ratios();
    const double min_r = *std::min_element(rs.begin(), rs.end());
    const double max_r = *std::max_element(rs.begin(), rs.end());
    EXPECT_GT(min_r, 4.5);
    EXPECT_LT(max_r, 9.0);
    EXPECT_GT(clib.ratio(), 5.0);
}

TEST(CompressedLibrary, SerializationRoundTrips)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    const auto clib = CompressedLibrary::build(lib, cfg);

    std::stringstream ss;
    clib.save(ss);
    const auto loaded = CompressedLibrary::load(ss);
    ASSERT_EQ(loaded.size(), clib.size());

    Decompressor dec;
    for (const auto &[id, e] : clib.entries()) {
        ASSERT_TRUE(loaded.contains(id));
        const auto &l = loaded.entry(id);
        EXPECT_DOUBLE_EQ(l.threshold, e.threshold);
        EXPECT_DOUBLE_EQ(l.mse, e.mse);
        // Decoded waveforms are bit-identical.
        const auto a = dec.decompress(e.cw);
        const auto b = dec.decompress(l.cw);
        EXPECT_EQ(a.i, b.i);
        EXPECT_EQ(a.q, b.q);
    }
}

TEST(CompressedLibrary, LoadRejectsGarbage)
{
    std::stringstream ss;
    ss << "not a compressed library";
    EXPECT_DEATH({ auto l = CompressedLibrary::load(ss); }, "magic");
}

} // namespace
} // namespace compaqt::core
