/**
 * @file
 * End-to-end integration tests across modules: the full COMPAQT flow
 * (calibrate -> compress -> load -> stream -> drive qubits), fidelity
 * of compressed vs baseline circuits, and the RFSoC scalability
 * story.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/benchmarks.hh"
#include "circuits/scheduler.hh"
#include "circuits/surface_code.hh"
#include "circuits/transpiler.hh"
#include "core/compressed_library.hh"
#include "core/decompressor.hh"
#include "fidelity/noise.hh"
#include "fidelity/pulse_sim.hh"
#include "fidelity/tvd.hh"
#include "uarch/controller.hh"
#include "uarch/pipeline.hh"
#include "uarch/scaling.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"

namespace compaqt
{
namespace
{

/** Shared compile step: guadalupe device, WS=16 int-DCT-W library. */
struct CompiledDevice
{
    waveform::DeviceModel dev = waveform::DeviceModel::ibm("guadalupe");
    waveform::PulseLibrary lib;
    core::CompressedLibrary clib;

    CompiledDevice()
    {
        lib = waveform::PulseLibrary::build(dev);
        core::FidelityAwareConfig cfg;
        cfg.base.codec = "int-dct";
        cfg.base.windowSize = 16;
        clib = core::CompressedLibrary::build(lib, cfg);
    }
};

const CompiledDevice &
compiled()
{
    static const CompiledDevice cd;
    return cd;
}

TEST(Integration, EveryGatePulseStreamsBitExact)
{
    // Hardware pipeline output == software golden decode for the
    // whole library (both channels).
    const auto &cd = compiled();
    core::Decompressor dec;
    const std::size_t width = cd.clib.worstCaseWindowWords();
    for (const auto &[id, e] : cd.clib.entries()) {
        for (const auto *ch : {&e.cw.i, &e.cw.q}) {
            uarch::DecompressionPipeline pipe(
                uarch::EngineKind::IntDctW, 16, width);
            pipe.load(*ch);
            const auto hw = pipe.stream();
            const auto sw =
                dec.decompressChannel(*ch, "int-dct");
            ASSERT_EQ(hw.samples.size(), sw.size());
            for (std::size_t k = 0; k < sw.size(); ++k)
                ASSERT_EQ(dsp::IntDct::dequantize(hw.samples[k]),
                          sw[k])
                    << waveform::toString(id) << " k=" << k;
        }
    }
}

TEST(Integration, DecompressedPulsesKeepGateErrorTiny)
{
    // Pulse-level: every decompressed gate is within 1e-4 average
    // gate error of its original (the Section IV-D claim that MSE at
    // the Algorithm-1 target does not hurt fidelity).
    const auto &cd = compiled();
    core::Decompressor dec;
    for (const auto &[id, e] : cd.clib.entries()) {
        const auto &orig = cd.lib.waveform(id);
        const auto rt = dec.decompress(e.cw);
        double err = 0.0;
        if (id.type == waveform::GateType::X)
            err = fidelity::pulseGateError(orig, rt, M_PI);
        else if (id.type == waveform::GateType::SX)
            err = fidelity::pulseGateError(orig, rt, M_PI / 2);
        else if (id.type == waveform::GateType::CX)
            err = fidelity::crGateError(orig, rt);
        else
            continue;
        // Coherent error well under the ~1e-2 stochastic gate noise
        // (matches the paper's <0.1% fidelity-degradation claim).
        EXPECT_LT(err, 3e-3) << waveform::toString(id);
    }
}

TEST(Integration, NormalizedCircuitFidelityNearOne)
{
    // The Fig 15 protocol on one benchmark: noisy baseline vs noisy
    // COMPAQT, same seeds; normalized fidelity ~ 1.
    const auto &cd = compiled();
    const circuits::CouplingMap map(cd.dev.numQubits(),
                                    cd.dev.coupling());
    const auto routed =
        circuits::transpile(circuits::swapBenchmark(), map);

    const auto ideal = fidelity::runIdeal(routed);
    const auto nm = fidelity::NoiseModel::ibm("guadalupe");
    const auto base_gs =
        fidelity::GateSet::fromLibrary(cd.dev, cd.lib);
    const auto comp_gs =
        fidelity::GateSet::fromCompressed(cd.dev, cd.lib, cd.clib);

    Rng rng_a(123), rng_b(123);
    const auto base =
        fidelity::runNoisy(routed, base_gs, nm, 300, rng_a);
    const auto comp =
        fidelity::runNoisy(routed, comp_gs, nm, 300, rng_b);
    const double fb = fidelity::fidelityTvd(ideal.distribution,
                                            base.distribution);
    const double fc = fidelity::fidelityTvd(ideal.distribution,
                                            comp.distribution);
    EXPECT_GT(fb, 0.5);
    EXPECT_NEAR(fc / fb, 1.0, 0.02);
}

TEST(Integration, ControllerSupportsFiveFoldMoreQubits)
{
    const auto &cd = compiled();
    uarch::ControllerConfig uc;
    uc.compressed = false;
    uarch::ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = cd.clib.worstCaseWindowWords();
    const uarch::Controller base(uc, cd.clib);
    const uarch::Controller comp(cc, cd.clib);
    EXPECT_GE(comp.maxConcurrentQubits(),
              5 * base.maxConcurrentQubits());
}

TEST(Integration, ScheduledCircuitFitsBankBudget)
{
    const auto &cd = compiled();
    const circuits::CouplingMap map(cd.dev.numQubits(),
                                    cd.dev.coupling());
    const auto routed = circuits::transpile(circuits::qft(4), map);
    const auto sched = circuits::schedule(routed, {});

    uarch::ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = cd.clib.worstCaseWindowWords();
    uarch::Controller ctl(cc, cd.clib);
    const auto stats = ctl.execute(sched);
    EXPECT_TRUE(stats.feasible);
    EXPECT_GT(stats.totalSamples, 0u);
    EXPECT_GT(stats.peakChannels, 0);
    // Compression means far fewer words than samples move.
    EXPECT_LT(stats.totalWordsRead, stats.totalSamples / 4);
}

TEST(Integration, SurfaceCodeConcurrencyMatchesPaperShape)
{
    // Fig 5c: surface codes keep avg close to peak; Fig 17a: peak
    // channels > 80% of the patch.
    for (const auto &sc :
         {circuits::surface17(), circuits::surface25()}) {
        const auto sched = circuits::schedule(sc.circuit, {});
        const auto prof = circuits::concurrency(sched);
        EXPECT_GT(prof.peakChannels,
                  static_cast<int>(0.8 * sc.totalQubits()));
        EXPECT_GT(prof.avgChannels, 0.4 * prof.peakChannels);
    }
}

TEST(Integration, SerializationSurvivesFullFlow)
{
    // Save -> load -> stream: identical hardware samples.
    const auto &cd = compiled();
    std::stringstream ss;
    cd.clib.save(ss);
    const auto loaded = core::CompressedLibrary::load(ss);

    const waveform::GateId id{waveform::GateType::CX, 0, 1};
    const std::size_t width = cd.clib.worstCaseWindowWords();
    uarch::DecompressionPipeline a(uarch::EngineKind::IntDctW, 16,
                                   width);
    uarch::DecompressionPipeline b(uarch::EngineKind::IntDctW, 16,
                                   width);
    a.load(cd.clib.entry(id).cw.i);
    b.load(loaded.entry(id).cw.i);
    EXPECT_EQ(a.stream().samples, b.stream().samples);
}

TEST(Integration, WindowSize8HasMoreBoundaryDistortion)
{
    // The Fig 15 WS=8 effect: same MSE targets, but WS=8 libraries
    // carry more boundary distortion per gate error than WS=16.
    const auto &cd = compiled();
    core::FidelityAwareConfig cfg8;
    cfg8.base.codec = "int-dct";
    cfg8.base.windowSize = 8;
    const auto clib8 = core::CompressedLibrary::build(cd.lib, cfg8);
    core::Decompressor dec;
    double err8 = 0.0, err16 = 0.0;
    int n = 0;
    for (const auto &[id, e] : cd.clib.entries()) {
        if (id.type != waveform::GateType::X)
            continue;
        const auto &orig = cd.lib.waveform(id);
        err16 += fidelity::pulseGateError(
            orig, dec.decompress(e.cw), M_PI);
        err8 += fidelity::pulseGateError(
            orig, dec.decompress(clib8.entry(id).cw), M_PI);
        ++n;
    }
    EXPECT_GT(n, 0);
    // WS=8 is never better on average.
    EXPECT_GE(err8, err16 * 0.8);
}

} // namespace
} // namespace compaqt
