/**
 * @file
 * Unit tests for common utilities: RNG determinism and distributions,
 * statistics, histogram, decay fitting, table formatting, and the
 * shared worker pool (common::Executor).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace compaqt
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, StringSeedingIsStable)
{
    Rng a("guadalupe", 3), b("guadalupe", 3), c("toronto", 3);
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double lo = 1.0, hi = 0.0, sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformIntHasNoObviousBias)
{
    Rng rng(11);
    std::vector<int> counts(7, 0);
    const int n = 70000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(7)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.2) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(n), 0.2, 0.01);
}

TEST(Stats, SummarizeBasics)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const Summary s = summarize(xs);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
    EXPECT_EQ(s.count, 4u);
}

TEST(Stats, SummarizeEmptyIsZero)
{
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, HistogramCounts)
{
    Histogram h;
    h.add(2);
    h.add(2);
    h.add(3);
    EXPECT_EQ(h.count(2), 2u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.count(5), 0u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.maxValue(), 3);
}

TEST(Stats, LineFitRecoversSlope)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 * i - 7.0);
    }
    const LineFit f = fitLine(xs, ys);
    EXPECT_NEAR(f.slope, 3.0, 1e-10);
    EXPECT_NEAR(f.intercept, -7.0, 1e-9);
    EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, DecayFitRecoversAlpha)
{
    // y = 0.75 * 0.97^x + 0.25, the shape of a 2Q RB decay.
    std::vector<double> xs, ys;
    for (int m : {1, 5, 10, 20, 35, 50, 75, 100}) {
        xs.push_back(m);
        ys.push_back(0.75 * std::pow(0.97, m) + 0.25);
    }
    const DecayFit f = fitDecay(xs, ys, 0.25);
    EXPECT_NEAR(f.alpha, 0.97, 2e-3);
    EXPECT_NEAR(f.b, 0.25, 0.02);
    EXPECT_NEAR(f.a, 0.75, 0.05);
}

TEST(Stats, DecayFitToleratesNoise)
{
    Rng rng(5);
    std::vector<double> xs, ys;
    for (int m : {1, 5, 10, 20, 35, 50, 75, 100}) {
        xs.push_back(m);
        ys.push_back(0.75 * std::pow(0.96, m) + 0.25 +
                     rng.normal(0.0, 0.004));
    }
    const DecayFit f = fitDecay(xs, ys, 0.25);
    EXPECT_NEAR(f.alpha, 0.96, 0.01);
}

TEST(Table, RendersHeaderAndRows)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"alpha", Table::num(1.5, 1)});
    std::ostringstream ss;
    t.print(ss);
    const std::string out = ss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::sci(0.000123, 1), "1.2e-04");
}

// ------------------------------------------------- JSON escaping

/**
 * Minimal strict JSON string-literal parser for the round-trip
 * checks: rejects raw control characters, unescaped quotes, and
 * unknown escapes — everything RFC 8259 rejects.
 */
std::optional<std::string>
parseJsonString(const std::string &lit)
{
    if (lit.size() < 2 || lit.front() != '"' || lit.back() != '"')
        return std::nullopt;
    std::string out;
    std::size_t i = 1;
    const std::size_t end = lit.size() - 1;
    while (i < end) {
        const char c = lit[i];
        if (static_cast<unsigned char>(c) < 0x20 || c == '"')
            return std::nullopt;
        if (c != '\\') {
            out += c;
            ++i;
            continue;
        }
        if (++i >= end)
            return std::nullopt;
        const char e = lit[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (i + 4 > end)
                return std::nullopt;
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
                const char h = lit[i + static_cast<std::size_t>(k)];
                v <<= 4;
                if (h >= '0' && h <= '9')
                    v += static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    v += static_cast<unsigned>(10 + h - 'a');
                else if (h >= 'A' && h <= 'F')
                    v += static_cast<unsigned>(10 + h - 'A');
                else
                    return std::nullopt;
            }
            i += 4;
            if (v > 0xff) // the escaper only emits \u00XX
                return std::nullopt;
            out += static_cast<char>(v);
            break;
          }
          default:
            return std::nullopt;
        }
    }
    return out;
}

TEST(Json, EscapeRoundTripsHostileKeys)
{
    // The bug this guards: bench names / metric keys / codec keys
    // containing quotes, backslashes, or newlines used to be written
    // raw into BENCH_*.json, producing unparseable output.
    const std::vector<std::string> keys = {
        "plain",
        "quote\"in\"key",
        "back\\slash",
        "line\nbreak",
        "tab\tand\rret",
        std::string("nul\x01byte"),
        "mixed \"q\" \\ \n \x02 end",
    };
    for (const auto &k : keys) {
        std::ostringstream ss;
        jsonQuote(ss, k);
        const auto parsed = parseJsonString(ss.str());
        ASSERT_TRUE(parsed.has_value()) << ss.str();
        EXPECT_EQ(*parsed, k);
        EXPECT_EQ(jsonEscape(k),
                  ss.str().substr(1, ss.str().size() - 2));
    }
}

TEST(Json, TableJsonEscapesTitleHeaderAndCells)
{
    Table t("nasty \"title\" \\ with\nnewline");
    t.header({"key \"h\"", "v"});
    t.row({"cell\\with\"stuff", "1.5"});
    std::ostringstream ss;
    t.json(ss);
    const std::string out = ss.str();
    // A strict parser must accept it: no raw control characters, and
    // the hostile strings appear escaped.
    for (const char c : out)
        ASSERT_GE(static_cast<unsigned char>(c), 0x20u) << out;
    EXPECT_NE(out.find("nasty \\\"title\\\""), std::string::npos);
    EXPECT_NE(out.find("\\n"), std::string::npos);
    EXPECT_NE(out.find("cell\\\\with\\\"stuff"), std::string::npos);
}

// ------------------------------------------------- percentiles

TEST(Stats, PercentilesNearestRank)
{
    std::vector<double> xs;
    for (int i = 100; i >= 1; --i)
        xs.push_back(i); // unsorted on purpose
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 95.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);

    const Percentiles p = percentiles(xs);
    EXPECT_DOUBLE_EQ(p.p50, 50.0);
    EXPECT_DOUBLE_EQ(p.p95, 95.0);
    EXPECT_DOUBLE_EQ(p.p99, 99.0);
    EXPECT_DOUBLE_EQ(p.min, 1.0);
    EXPECT_DOUBLE_EQ(p.max, 100.0);
    EXPECT_DOUBLE_EQ(p.mean, 50.5);
    EXPECT_EQ(p.count, 100u);
}

TEST(Stats, PercentilesSmallAndEmptySamples)
{
    EXPECT_EQ(percentiles({}).count, 0u);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
    const std::vector<double> one = {7.0};
    const Percentiles p = percentiles(one);
    EXPECT_DOUBLE_EQ(p.p50, 7.0);
    EXPECT_DOUBLE_EQ(p.p99, 7.0);
    EXPECT_DOUBLE_EQ(p.min, 7.0);
    EXPECT_DOUBLE_EQ(p.max, 7.0);
    EXPECT_EQ(p.count, 1u);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::toGBs(2e9), 2.0);
    EXPECT_DOUBLE_EQ(units::toMB(5e6), 5.0);
    EXPECT_DOUBLE_EQ(units::toMW(0.003), 3.0);
}

// ------------------------------------------------- shared worker pool

TEST(Executor, DefaultWorkerCountIsClampedPositive)
{
    // hardware_concurrency() may legally return 0; the default must
    // never produce a zero-worker pool (or a 0 in bench env headers).
    EXPECT_GE(common::Executor::defaultWorkerCount(), 1);
}

TEST(Executor, WorkerIdsAreStableAndInRange)
{
    common::Executor exec(4);
    const auto main_id = std::this_thread::get_id();
    // A barrier of all 4 workers forces each of the 4 jobs onto a
    // distinct worker — the caller included — so every worker id is
    // observed deterministically instead of depending on who wins
    // the claim race (fast pool threads can otherwise drain a batch
    // of trivial jobs before the caller claims one).
    std::barrier sync(4);
    std::vector<std::atomic<int>> claims(4);
    std::atomic<int> caller_worker{-1};
    exec.forEachWorker(4, [&](std::size_t worker, std::size_t) {
        sync.arrive_and_wait();
        ASSERT_LT(worker, 4u);
        claims[worker].fetch_add(1);
        if (std::this_thread::get_id() == main_id)
            caller_worker = static_cast<int>(worker);
    });
    // One job per worker id, and the calling thread is worker 0.
    for (auto &c : claims)
        EXPECT_EQ(c.load(), 1);
    EXPECT_EQ(caller_worker.load(), 0);

    // Larger batch: ids stay in range whoever claims.
    std::vector<int> worker_of_job(64, -1);
    exec.forEachWorker(worker_of_job.size(),
                       [&](std::size_t worker, std::size_t i) {
                           worker_of_job[i] =
                               static_cast<int>(worker);
                       });
    for (const int w : worker_of_job) {
        ASSERT_GE(w, 0);
        ASSERT_LT(w, 4);
    }
}

TEST(Executor, PoolThreadExceptionPropagatesToCaller)
{
    // Regression guard for the promoted contract: an exception
    // thrown by a job running on a *pool thread* (not the caller)
    // must reach the forEach caller, not vanish into the pool. A
    // barrier of all 4 workers guarantees every worker claims
    // exactly one of the 4 jobs, then everyone but the caller
    // throws.
    common::Executor exec(4);
    const auto main_id = std::this_thread::get_id();
    std::barrier sync(4);
    EXPECT_THROW(
        exec.forEach(4,
                     [&](std::size_t) {
                         sync.arrive_and_wait();
                         if (std::this_thread::get_id() != main_id)
                             throw std::runtime_error(
                                 "pool worker failed");
                     }),
        std::runtime_error);
}

TEST(Executor, WorkerExceptionDoesNotAbandonRemainingJobs)
{
    // The batch drains fully even when a job throws: every index
    // still runs exactly once (first error is rethrown afterwards).
    common::Executor exec(3);
    std::vector<std::atomic<int>> runs(97);
    EXPECT_THROW(exec.forEach(runs.size(),
                              [&](std::size_t i) {
                                  runs[i].fetch_add(1);
                                  if (i % 10 == 0)
                                      throw std::runtime_error(
                                          "sporadic");
                              }),
                 std::runtime_error);
    for (auto &r : runs)
        ASSERT_EQ(r.load(), 1);
}

} // namespace
} // namespace compaqt
