/**
 * @file
 * Unit tests for common utilities: RNG determinism and distributions,
 * statistics, histogram, decay fitting, table formatting, and the
 * shared worker pool (common::Executor).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/executor.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace compaqt
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, StringSeedingIsStable)
{
    Rng a("guadalupe", 3), b("guadalupe", 3), c("toronto", 3);
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double lo = 1.0, hi = 0.0, sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformIntHasNoObviousBias)
{
    Rng rng(11);
    std::vector<int> counts(7, 0);
    const int n = 70000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(7)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.2) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(n), 0.2, 0.01);
}

TEST(Stats, SummarizeBasics)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const Summary s = summarize(xs);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
    EXPECT_EQ(s.count, 4u);
}

TEST(Stats, SummarizeEmptyIsZero)
{
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, HistogramCounts)
{
    Histogram h;
    h.add(2);
    h.add(2);
    h.add(3);
    EXPECT_EQ(h.count(2), 2u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.count(5), 0u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.maxValue(), 3);
}

TEST(Stats, LineFitRecoversSlope)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 * i - 7.0);
    }
    const LineFit f = fitLine(xs, ys);
    EXPECT_NEAR(f.slope, 3.0, 1e-10);
    EXPECT_NEAR(f.intercept, -7.0, 1e-9);
    EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, DecayFitRecoversAlpha)
{
    // y = 0.75 * 0.97^x + 0.25, the shape of a 2Q RB decay.
    std::vector<double> xs, ys;
    for (int m : {1, 5, 10, 20, 35, 50, 75, 100}) {
        xs.push_back(m);
        ys.push_back(0.75 * std::pow(0.97, m) + 0.25);
    }
    const DecayFit f = fitDecay(xs, ys, 0.25);
    EXPECT_NEAR(f.alpha, 0.97, 2e-3);
    EXPECT_NEAR(f.b, 0.25, 0.02);
    EXPECT_NEAR(f.a, 0.75, 0.05);
}

TEST(Stats, DecayFitToleratesNoise)
{
    Rng rng(5);
    std::vector<double> xs, ys;
    for (int m : {1, 5, 10, 20, 35, 50, 75, 100}) {
        xs.push_back(m);
        ys.push_back(0.75 * std::pow(0.96, m) + 0.25 +
                     rng.normal(0.0, 0.004));
    }
    const DecayFit f = fitDecay(xs, ys, 0.25);
    EXPECT_NEAR(f.alpha, 0.96, 0.01);
}

TEST(Table, RendersHeaderAndRows)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"alpha", Table::num(1.5, 1)});
    std::ostringstream ss;
    t.print(ss);
    const std::string out = ss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::sci(0.000123, 1), "1.2e-04");
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::toGBs(2e9), 2.0);
    EXPECT_DOUBLE_EQ(units::toMB(5e6), 5.0);
    EXPECT_DOUBLE_EQ(units::toMW(0.003), 3.0);
}

// ------------------------------------------------- shared worker pool

TEST(Executor, WorkerIdsAreStableAndInRange)
{
    common::Executor exec(4);
    const auto main_id = std::this_thread::get_id();
    std::vector<int> worker_of_job(64, -1);
    std::atomic<bool> caller_participated{false};
    exec.forEachWorker(worker_of_job.size(),
                       [&](std::size_t worker, std::size_t i) {
                           worker_of_job[i] =
                               static_cast<int>(worker);
                           if (std::this_thread::get_id() == main_id)
                               caller_participated = worker == 0;
                       });
    for (const int w : worker_of_job) {
        ASSERT_GE(w, 0);
        ASSERT_LT(w, 4);
    }
    // The calling thread drains jobs too, always as worker 0.
    EXPECT_TRUE(caller_participated.load());
}

TEST(Executor, PoolThreadExceptionPropagatesToCaller)
{
    // Regression guard for the promoted contract: an exception
    // thrown by a job running on a *pool thread* (not the caller)
    // must reach the forEach caller, not vanish into the pool. A
    // barrier of all 4 workers guarantees every worker claims
    // exactly one of the 4 jobs, then everyone but the caller
    // throws.
    common::Executor exec(4);
    const auto main_id = std::this_thread::get_id();
    std::barrier sync(4);
    EXPECT_THROW(
        exec.forEach(4,
                     [&](std::size_t) {
                         sync.arrive_and_wait();
                         if (std::this_thread::get_id() != main_id)
                             throw std::runtime_error(
                                 "pool worker failed");
                     }),
        std::runtime_error);
}

TEST(Executor, WorkerExceptionDoesNotAbandonRemainingJobs)
{
    // The batch drains fully even when a job throws: every index
    // still runs exactly once (first error is rethrown afterwards).
    common::Executor exec(3);
    std::vector<std::atomic<int>> runs(97);
    EXPECT_THROW(exec.forEach(runs.size(),
                              [&](std::size_t i) {
                                  runs[i].fetch_add(1);
                                  if (i % 10 == 0)
                                      throw std::runtime_error(
                                          "sporadic");
                              }),
                 std::runtime_error);
    for (auto &r : runs)
        ASSERT_EQ(r.load(), 1);
}

} // namespace
} // namespace compaqt
