/**
 * @file
 * Unit tests for the circuits substrate: IR validity, basis
 * decomposition (verified against exact unitaries via the statevector
 * simulator), routing on coupling maps, ASAP scheduling and
 * concurrency, benchmark generators (Table VI), and surface-code
 * construction.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuits/benchmarks.hh"
#include "circuits/circuit.hh"
#include "circuits/scheduler.hh"
#include "circuits/surface_code.hh"
#include "circuits/transpiler.hh"
#include "fidelity/noise.hh"
#include "fidelity/statevector.hh"
#include "fidelity/tvd.hh"

namespace compaqt::circuits
{
namespace
{

/** Exact statevector of a logical circuit (measure gates ignored). */
fidelity::Statevector
simulate(const Circuit &c)
{
    const Circuit basis = decompose(c);
    fidelity::Statevector sv(basis.numQubits());
    for (const auto &g : basis.gates()) {
        switch (g.op) {
          case Op::X:
            sv.apply1(fidelity::xGate(), g.qubits[0]);
            break;
          case Op::SX:
            sv.apply1(fidelity::sxGate(), g.qubits[0]);
            break;
          case Op::RZ:
            sv.apply1(fidelity::rzGate(g.param), g.qubits[0]);
            break;
          case Op::CX:
            sv.apply2(fidelity::cxGate(), g.qubits[0], g.qubits[1]);
            break;
          case Op::Measure:
          case Op::Barrier:
            break;
          default:
            ADD_FAILURE() << "non-basis op after decompose";
        }
    }
    return sv;
}

/** |amplitude|^2 of basis state `idx` after running c on |0...0>. */
double
probabilityOf(const Circuit &c, std::size_t idx)
{
    return simulate(c).probabilities()[idx];
}

// -------------------------------------------------------------- circuit

TEST(Circuit, CountsGates)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.measureAll();
    EXPECT_EQ(c.countCx(), 2u);
    EXPECT_EQ(c.count(Op::H), 1u);
    EXPECT_EQ(c.count(Op::Measure), 3u);
}

TEST(Circuit, RejectsBadOperands)
{
    Circuit c(2);
    EXPECT_DEATH(c.x(2), "out of range");
    EXPECT_DEATH(c.cx(0, 0), "duplicate");
}

// ------------------------------------------------------------ decompose

TEST(Decompose, OutputsOnlyBasisOps)
{
    Circuit c(3);
    c.h(0);
    c.t(1);
    c.ry(2, 0.7);
    c.ccx(0, 1, 2);
    c.swap(0, 2);
    const Circuit b = decompose(c);
    for (const auto &g : b.gates())
        EXPECT_TRUE(opInBasis(g.op)) << opName(g.op);
}

TEST(Decompose, HadamardActsCorrectly)
{
    Circuit c(1);
    c.h(0);
    const auto sv = simulate(c);
    EXPECT_NEAR(std::norm(sv.amplitudes()[0]), 0.5, 1e-10);
    EXPECT_NEAR(std::norm(sv.amplitudes()[1]), 0.5, 1e-10);
}

TEST(Decompose, RxRotationAngleIsExact)
{
    for (double theta : {0.3, 1.0, M_PI / 2, 2.5}) {
        Circuit c(1);
        c.rx(0, theta);
        const double p1 = probabilityOf(c, 1);
        EXPECT_NEAR(p1, std::sin(theta / 2) * std::sin(theta / 2),
                    1e-10)
            << "theta=" << theta;
    }
}

TEST(Decompose, RyRotationAngleIsExact)
{
    for (double theta : {0.4, 1.3, 2.9}) {
        Circuit c(1);
        c.ry(0, theta);
        const double p1 = probabilityOf(c, 1);
        EXPECT_NEAR(p1, std::sin(theta / 2) * std::sin(theta / 2),
                    1e-10);
    }
}

TEST(Decompose, ToffoliTruthTable)
{
    for (int input = 0; input < 8; ++input) {
        Circuit c(3);
        for (int b = 0; b < 3; ++b)
            if (input & (1 << b))
                c.x(b);
        c.ccx(0, 1, 2);
        // CCX flips bit 2 iff bits 0 and 1 are set.
        const int expected =
            (input & 3) == 3 ? input ^ 4 : input;
        EXPECT_NEAR(probabilityOf(c, static_cast<std::size_t>(
                                      expected)),
                    1.0, 1e-9)
            << "input=" << input;
    }
}

TEST(Decompose, SwapExchangesStates)
{
    Circuit c(2);
    c.x(0);
    c.swap(0, 1);
    EXPECT_NEAR(probabilityOf(c, 2), 1.0, 1e-10); // |10> (qubit1 set)
}

TEST(Decompose, CzPhaseIsCorrect)
{
    // CZ on |11> flips the sign; verify via interference: H(0), CZ,
    // H(0) with q1=|1> equals X on q0.
    Circuit c(2);
    c.x(1);
    c.h(0);
    c.cz(1, 0);
    c.h(0);
    EXPECT_NEAR(probabilityOf(c, 3), 1.0, 1e-10);
}

TEST(Decompose, CpMatchesControlledPhase)
{
    // CP(theta) on |11> adds phase e^{i theta}; use the same
    // interference trick with theta = pi to recover CZ.
    Circuit c(2);
    c.x(1);
    c.h(0);
    c.cp(1, 0, M_PI);
    c.h(0);
    EXPECT_NEAR(probabilityOf(c, 3), 1.0, 1e-10);
}

// ---------------------------------------------------------------- route

TEST(Route, PassesThroughWhenCoupled)
{
    CouplingMap map(3, {{0, 1}, {1, 2}});
    Circuit c(3);
    c.cx(0, 1);
    const Circuit r = route(decompose(c), map);
    EXPECT_EQ(r.countCx(), 1u);
}

TEST(Route, InsertsSwapsForDistantPairs)
{
    CouplingMap map(3, {{0, 1}, {1, 2}});
    Circuit c(3);
    c.cx(0, 2);
    const Circuit r = route(decompose(c), map);
    // One swap (3 CX) + the CX itself.
    EXPECT_EQ(r.countCx(), 4u);
    // Every emitted CX must respect the coupling map.
    for (const auto &g : r.gates())
        if (g.op == Op::CX)
            EXPECT_TRUE(map.connected(g.qubits[0], g.qubits[1]));
}

TEST(Route, PreservesSemanticsUpToLayout)
{
    // |10> swapped through a line: the excitation must end up on the
    // physical qubit holding logical 1 -- verified via distribution
    // over measured qubits of the routed circuit.
    CouplingMap map(3, {{0, 1}, {1, 2}});
    Circuit c(3);
    c.x(0);
    c.cx(0, 2); // entangles nothing: CX with control=1 flips target
    c.measureAll();
    const Circuit r = route(decompose(c), map);
    const auto result = fidelity::runIdeal(r);
    // Exactly one outcome with probability 1 and two bits set.
    double pmax = 0.0;
    std::size_t arg = 0;
    for (std::size_t i = 0; i < result.distribution.size(); ++i) {
        if (result.distribution[i] > pmax) {
            pmax = result.distribution[i];
            arg = i;
        }
    }
    EXPECT_NEAR(pmax, 1.0, 1e-9);
    EXPECT_EQ(__builtin_popcountll(arg), 2);
}

TEST(Route, BfsPathIsShortest)
{
    CouplingMap map(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
    EXPECT_EQ(map.path(0, 3).size(), 3u); // 0-4-3
    EXPECT_EQ(map.path(0, 2).size(), 3u); // 0-1-2
}

// ------------------------------------------------------------- schedule

TEST(Schedule, SerialGatesOnOneQubit)
{
    Circuit c(1);
    c.x(0);
    c.sx(0);
    c.measure(0);
    const Durations dur;
    const Schedule s = schedule(c, dur);
    ASSERT_EQ(s.events.size(), 3u);
    EXPECT_DOUBLE_EQ(s.events[0].start, 0.0);
    EXPECT_DOUBLE_EQ(s.events[1].start, dur.t1q);
    EXPECT_DOUBLE_EQ(s.events[2].start, 2 * dur.t1q);
    EXPECT_DOUBLE_EQ(s.makespan, 2 * dur.t1q + dur.tMeasure);
}

TEST(Schedule, IndependentGatesRunConcurrently)
{
    Circuit c(4);
    for (int q = 0; q < 4; ++q)
        c.x(q);
    const Schedule s = schedule(c, {});
    for (const auto &e : s.events)
        EXPECT_DOUBLE_EQ(e.start, 0.0);
    const auto prof = concurrency(s);
    EXPECT_EQ(prof.peakChannels, 4);
    EXPECT_EQ(prof.peakGates, 4);
}

TEST(Schedule, RzIsVirtual)
{
    Circuit c(1);
    c.rz(0, 1.0);
    c.x(0);
    const Schedule s = schedule(c, {});
    ASSERT_EQ(s.events.size(), 1u);
    EXPECT_DOUBLE_EQ(s.events[0].start, 0.0);
}

TEST(Schedule, BarrierSynchronizes)
{
    Circuit c(2);
    c.x(0);
    c.barrier();
    c.x(1);
    const Durations dur;
    const Schedule s = schedule(c, dur);
    EXPECT_DOUBLE_EQ(s.events[1].start, dur.t1q);
}

TEST(Schedule, CxOccupiesBothChannels)
{
    Circuit c(2);
    c.cx(0, 1);
    const Schedule s = schedule(c, {});
    const auto prof = concurrency(s);
    EXPECT_EQ(prof.peakChannels, 2);
    EXPECT_EQ(prof.peakGates, 1);
}

TEST(Schedule, ZeroGateCircuitYieldsEmptySchedule)
{
    const Schedule s = schedule(Circuit(3), {});
    EXPECT_TRUE(s.events.empty());
    EXPECT_DOUBLE_EQ(s.makespan, 0.0);
    EXPECT_TRUE(eventOrderByStart(s).empty());
    const auto prof = concurrency(s);
    EXPECT_EQ(prof.peakChannels, 0);
    EXPECT_EQ(prof.peakGates, 0);
}

TEST(Schedule, SingleChannelDeviceSerializesEverything)
{
    // One qubit means one drive channel: every event must follow the
    // previous back to back, with no concurrency anywhere.
    Circuit c(1);
    for (int i = 0; i < 6; ++i)
        c.x(0);
    const Durations dur;
    const Schedule s = schedule(c, dur);
    ASSERT_EQ(s.events.size(), 6u);
    for (std::size_t i = 1; i < s.events.size(); ++i) {
        EXPECT_GT(s.events[i].start, s.events[i - 1].start);
        EXPECT_DOUBLE_EQ(s.events[i].start,
                         s.events[i - 1].start +
                             s.events[i - 1].duration);
    }
    EXPECT_EQ(concurrency(s).peakChannels, 1);
}

TEST(Schedule, EventOrderByStartIsStableOnTies)
{
    // Hand-built (non-sorted) schedule: ascending start, ties broken
    // by event-list position — the canonical issue order the
    // instruction-stream compiler lowers in.
    Schedule s;
    const Gate g{Op::X, {0}, 0.0};
    for (const double start : {5.0, 0.0, 5.0, 3.0})
        s.events.push_back({g, start, 30e-9, {0}});
    s.makespan = 5.0 + 30e-9;
    const auto order = eventOrderByStart(s);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 3u);
    EXPECT_EQ(order[2], 0u);
    EXPECT_EQ(order[3], 2u);
}

TEST(Schedule, PartitionRoutesRepeatedGateToOneOwner)
{
    // All gates on the same (gate, channel): the partition must hand
    // every event to the drive qubit's owner and leave the other
    // parts empty.
    Circuit c(4);
    for (int i = 0; i < 5; ++i)
        c.x(2);
    const Schedule s = schedule(c, {});
    const std::vector<int> owner = {0, 0, 1, 1};
    const auto parts = partitionByOwner(s, owner, 2);
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_TRUE(parts[0].events.empty());
    ASSERT_EQ(parts[1].events.size(), 5u);
    // Global start times are preserved in the owning slice.
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(parts[1].events[i].start,
                         s.events[i].start);
    EXPECT_DOUBLE_EQ(parts[1].makespan, s.makespan);
}

TEST(Schedule, BandwidthScalesWithConcurrency)
{
    Circuit c(10);
    for (int q = 0; q < 10; ++q)
        c.x(q);
    const Schedule s = schedule(c, {});
    const auto bw = bandwidth(s, 24e9); // 6 GS/s x 4 B
    EXPECT_DOUBLE_EQ(bw.peak, 240e9);
    EXPECT_DOUBLE_EQ(bw.avg, 240e9);
}

// ------------------------------------------------------------ benchmarks

TEST(Benchmarks, TableVIQubitCounts)
{
    const auto specs = fidelityBenchmarks();
    ASSERT_EQ(specs.size(), 9u);
    EXPECT_EQ(specs[0].circuit.numQubits(), 2u); // swap
    EXPECT_EQ(specs[1].circuit.numQubits(), 3u); // toffoli
    EXPECT_EQ(specs[2].circuit.numQubits(), 4u); // qft-4
    EXPECT_EQ(specs[3].circuit.numQubits(), 4u); // adder-4
    EXPECT_EQ(specs[4].circuit.numQubits(), 6u); // bv-5
    EXPECT_EQ(specs[8].circuit.numQubits(), 10u); // qaoa-10
}

TEST(Benchmarks, BvHasTwoCx)
{
    const Circuit c = bernsteinVazirani("10100");
    EXPECT_EQ(c.countCx(), 2u);
}

TEST(Benchmarks, BvRecoversSecret)
{
    const Circuit c = bernsteinVazirani("1011");
    const auto result = fidelity::runIdeal(decompose(c));
    // The measured data bits reproduce the secret (LSB = bit 0).
    const std::size_t expected = 0b1101; // "1011" with bit0 = '1'
    EXPECT_NEAR(result.distribution[expected], 1.0, 1e-9);
}

TEST(Benchmarks, QftOnBasisStateIsUniform)
{
    Circuit c(3, "qft-input");
    c.x(0);
    const Circuit q = qft(3);
    for (const auto &g : q.gates())
        if (g.op != Op::Measure && g.op != Op::Barrier)
            c.add(g.op, g.qubits, g.param);
    const auto probs = simulate(c).probabilities();
    for (double p : probs)
        EXPECT_NEAR(p, 1.0 / 8.0, 1e-9);
}

TEST(Benchmarks, AdderComputesSum)
{
    // cin=1, a=1, b=0 -> sum=0 carry=1: qubits (0,1,2,3)=(1,1,0,1).
    const Circuit c = adder4();
    const auto result = fidelity::runIdeal(decompose(c));
    const std::size_t expected = 0b1011;
    EXPECT_NEAR(result.distribution[expected], 1.0, 1e-9);
}

TEST(Benchmarks, QaoaStructure)
{
    const auto edges = randomGraph(6, 1.0, 6);
    EXPECT_EQ(edges.size(), 15u); // K6
    const Circuit c = qaoa(6, edges, 2);
    EXPECT_EQ(c.countCx(), 2u * 15 * 2);
}

TEST(Benchmarks, RandomGraphIsConnectedAndDeterministic)
{
    const auto a = randomGraph(8, 0.3, 42);
    const auto b = randomGraph(8, 0.3, 42);
    EXPECT_EQ(a, b);
    // Ring backbone guarantees every vertex has degree >= 1.
    std::vector<int> deg(8, 0);
    for (const auto &[x, y] : a) {
        ++deg[static_cast<std::size_t>(x)];
        ++deg[static_cast<std::size_t>(y)];
    }
    for (int d : deg)
        EXPECT_GE(d, 1);
}

TEST(Benchmarks, TranspiledCxCountsInPaperBallpark)
{
    // Post-routing CX counts should be within ~2x of Table VI.
    const auto dev_map = CouplingMap(
        16, {{0, 1},   {1, 2},   {1, 4},   {2, 3},  {3, 5},
             {4, 7},   {5, 8},   {6, 7},   {7, 10}, {8, 9},
             {8, 11},  {10, 12}, {11, 14}, {12, 13},
             {12, 15}, {13, 14}});
    for (const auto &spec : fidelityBenchmarks()) {
        const Circuit t = transpile(spec.circuit, dev_map);
        EXPECT_GE(t.countCx(), spec.circuit.countCx());
        EXPECT_GT(t.countCx(), spec.paperCx / 3);
        EXPECT_LT(t.countCx(), spec.paperCx * 3 + 20)
            << spec.name;
    }
}

// ----------------------------------------------------------- surface code

TEST(SurfaceCode, QubitCountsMatchNames)
{
    EXPECT_EQ(surface17().totalQubits(), 17u);
    EXPECT_EQ(surface25().totalQubits(), 25u);
    EXPECT_EQ(surface49().totalQubits(), 49u);
    EXPECT_EQ(surface81().totalQubits(), 81u);
}

TEST(SurfaceCode, RotatedD3Structure)
{
    const auto sc = surface17();
    EXPECT_EQ(sc.dataQubits.size(), 9u);
    EXPECT_EQ(sc.xAncillas.size(), 4u);
    EXPECT_EQ(sc.zAncillas.size(), 4u);
    // Weight distribution: 4 weight-4 bulk + 4 weight-2 boundary.
    int w2 = 0, w4 = 0;
    for (const auto &s : sc.supports) {
        if (s.size() == 2)
            ++w2;
        else if (s.size() == 4)
            ++w4;
        else
            ADD_FAILURE() << "unexpected stabilizer weight "
                          << s.size();
    }
    EXPECT_EQ(w2, 4);
    EXPECT_EQ(w4, 4);
}

TEST(SurfaceCode, UnrotatedD3Structure)
{
    const auto sc = surface25();
    EXPECT_EQ(sc.dataQubits.size(), 13u);
    EXPECT_EQ(sc.xAncillas.size(), 6u);
    EXPECT_EQ(sc.zAncillas.size(), 6u);
}

TEST(SurfaceCode, EveryDataQubitIsCovered)
{
    for (const auto &sc : {surface17(), surface25()}) {
        std::set<int> covered;
        for (const auto &s : sc.supports)
            covered.insert(s.begin(), s.end());
        EXPECT_EQ(covered.size(), sc.dataQubits.size());
    }
}

TEST(SurfaceCode, SyndromeCircuitKeepsMostQubitsBusy)
{
    // Section VII-C: >80% of physical qubits driven concurrently.
    for (const auto &sc : {surface17(), surface25()}) {
        const Schedule s = schedule(sc.circuit, {});
        const auto prof = concurrency(s);
        EXPECT_GT(prof.peakChannels,
                  static_cast<int>(0.8 * sc.totalQubits()));
    }
}

TEST(SurfaceCode, MultipleRoundsScaleGateCount)
{
    const auto one = makeSurfaceCode(3, SurfaceLayout::Rotated, 1);
    const auto three = makeSurfaceCode(3, SurfaceLayout::Rotated, 3);
    EXPECT_EQ(three.circuit.countCx(), 3 * one.circuit.countCx());
}

TEST(SurfaceCode, NativeCouplingCoversInteractions)
{
    const auto sc = surface17();
    const auto map = sc.nativeCoupling();
    // Every CX in the circuit respects the native coupling.
    for (const auto &g : sc.circuit.gates())
        if (g.op == Op::CX)
            EXPECT_TRUE(map.connected(g.qubits[0], g.qubits[1]));
}

} // namespace
} // namespace compaqt::circuits
