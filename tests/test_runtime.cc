/**
 * @file
 * Tests for the sharded control-rack runtime: shard-plan determinism
 * and locality, schedule partitioning, the decoded-window cache (LRU
 * behavior and bit-exactness against the golden software decoder),
 * the worker pool, and the headline concurrency contract — N-worker
 * batch execution produces bit-identical per-shard demand to 1-worker
 * execution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuits/scheduler.hh"
#include "circuits/surface_code.hh"
#include "core/decompressor.hh"
#include "core/pipeline.hh"
#include "dsp/int_dct.hh"
#include "common/executor.hh"
#include "runtime/rack.hh"
#include "runtime/service.hh"
#include "runtime/tiered_store.hh"
#include "telemetry/metrics.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"

namespace compaqt::runtime
{
namespace
{

core::CompressedLibrary
buildCompressed(const waveform::PulseLibrary &lib, std::size_t ws = 16)
{
    return core::CompressionPipeline::with("int-dct")
        .window(ws)
        .mseTarget(1e-5)
        .build()
        .compressLibrary(lib);
}

uarch::ControllerConfig
controllerConfig(const core::CompressedLibrary &clib)
{
    uarch::ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = clib.worstCaseWindowWords();
    return cc;
}

// ----------------------------------------------------------- shard plans

TEST(ShardPlan, RoundRobinAssignment)
{
    const auto dev = waveform::DeviceModel::ibm("guadalupe");
    const auto plan =
        makeShardPlan(dev, 4, ShardPolicy::RoundRobin);
    ASSERT_EQ(plan.owner.size(), 16u);
    for (std::size_t q = 0; q < plan.owner.size(); ++q)
        EXPECT_EQ(plan.owner[q], static_cast<int>(q) % 4);
    for (const auto &qs : plan.shards)
        EXPECT_EQ(qs.size(), 4u);
}

TEST(ShardPlan, PlansAreDeterministic)
{
    const auto dev = waveform::DeviceModel::ibm("guadalupe");
    for (const auto policy :
         {ShardPolicy::RoundRobin, ShardPolicy::LocalityAware}) {
        const auto a = makeShardPlan(dev, 3, policy);
        const auto b = makeShardPlan(dev, 3, policy);
        EXPECT_EQ(a.owner, b.owner) << shardPolicyName(policy);
        EXPECT_EQ(a.shards, b.shards) << shardPolicyName(policy);
    }
}

TEST(ShardPlan, LocalityCoversAndBalances)
{
    const auto dev = waveform::DeviceModel::ibm("toronto"); // 27 q
    const auto plan =
        makeShardPlan(dev, 4, ShardPolicy::LocalityAware);
    std::set<int> seen;
    std::size_t total = 0;
    for (const auto &qs : plan.shards) {
        // 27 over 4: blocks of 7/7/7/6.
        EXPECT_GE(qs.size(), 6u);
        EXPECT_LE(qs.size(), 7u);
        total += qs.size();
        seen.insert(qs.begin(), qs.end());
        for (int q : qs)
            EXPECT_EQ(plan.owner[static_cast<std::size_t>(q)],
                      plan.owner[static_cast<std::size_t>(qs[0])]);
    }
    EXPECT_EQ(total, 27u);
    EXPECT_EQ(seen.size(), 27u);
}

TEST(ShardPlan, LocalityKeepsMoreCouplingsLocal)
{
    const auto dev = waveform::DeviceModel::ibm("brooklyn"); // 65 q
    const auto local =
        makeShardPlan(dev, 4, ShardPolicy::LocalityAware);
    const auto rr = makeShardPlan(dev, 4, ShardPolicy::RoundRobin);
    auto intra = [&](const ShardPlan &p) {
        int n = 0;
        for (const auto &[a, b] : dev.coupling())
            if (p.owner[static_cast<std::size_t>(a)] ==
                p.owner[static_cast<std::size_t>(b)])
                ++n;
        return n;
    };
    EXPECT_GT(intra(local), intra(rr));
}

TEST(ShardPlan, RejectsZeroShards)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    EXPECT_THROW(makeShardPlan(dev, 0, ShardPolicy::RoundRobin),
                 std::invalid_argument);
}

// ---------------------------------------------------------- partitioning

TEST(Partition, SplitsByFirstQubitOwner)
{
    circuits::Circuit c(4);
    c.x(0);
    c.cx(1, 2); // owned by qubit 1's shard
    c.x(3);
    c.measureAll();
    const auto sched = circuits::schedule(c, {});
    const std::vector<int> owner = {0, 0, 1, 1};
    const auto parts = circuits::partitionByOwner(sched, owner, 2);
    ASSERT_EQ(parts.size(), 2u);
    std::size_t total = 0;
    for (std::size_t p = 0; p < parts.size(); ++p) {
        for (const auto &e : parts[p].events) {
            EXPECT_EQ(owner[static_cast<std::size_t>(
                          e.gate.qubits[0])],
                      static_cast<int>(p));
            EXPECT_LE(e.start + e.duration, parts[p].makespan);
        }
        total += parts[p].events.size();
    }
    EXPECT_EQ(total, sched.events.size());
    // The CX on (1, 2) crosses the cut and lands on qubit 1's shard.
    EXPECT_EQ(parts[0].events.size(), 4u); // X0, CX(1,2), M0, M1
    EXPECT_EQ(parts[1].events.size(), 3u); // X3, M2, M3
}

TEST(Partition, PreservesGlobalStartTimes)
{
    const auto sc = circuits::surface17();
    const auto sched = circuits::schedule(sc.circuit, {});
    std::vector<int> owner(sc.totalQubits());
    for (std::size_t q = 0; q < owner.size(); ++q)
        owner[q] = static_cast<int>(q) % 3;
    const auto parts = circuits::partitionByOwner(sched, owner, 3);
    for (const auto &part : parts) {
        for (const auto &e : part.events)
            EXPECT_LE(e.start + e.duration, sched.makespan);
        EXPECT_LE(part.makespan, sched.makespan);
    }
}

// ------------------------------------------------------------- LRU cache

DecodedWindowKey
key(int q, std::uint32_t w)
{
    return {waveform::GateId{waveform::GateType::X, q, -1}, 0, w};
}

TEST(DecodedCache, LruEvictionOrder)
{
    DecodedWindowCache cache(2);
    int decodes = 0;
    auto fill = [&](SampleSpan out) -> std::size_t {
        ++decodes;
        out[0] = 1.0;
        return 1;
    };
    cache.get(key(0, 0), 1, fill); // miss
    cache.get(key(1, 0), 1, fill); // miss
    cache.get(key(0, 0), 1, fill); // hit, qubit 0 becomes MRU
    cache.get(key(2, 0), 1, fill); // miss, evicts qubit 1 (LRU)
    cache.get(key(0, 0), 1, fill); // still resident: hit
    cache.get(key(1, 0), 1, fill); // evicted above: miss again

    const auto s = cache.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(s.evictions, 2u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(decodes, 4);
    EXPECT_NEAR(s.hitRate(), 2.0 / 6.0, 1e-12);
}

TEST(DecodedCache, CapacityZeroDisablesCaching)
{
    DecodedWindowCache cache(0);
    int decodes = 0;
    auto fill = [&](SampleSpan out) -> std::size_t {
        ++decodes;
        out[0] = 1.0;
        out[1] = 2.0;
        return 2;
    };
    for (int i = 0; i < 3; ++i) {
        const auto v = cache.get(key(0, 0), 2, fill);
        ASSERT_EQ(v.size(), 2u);
        EXPECT_EQ(v.samples()[1], 2.0);
    }
    const auto s = cache.stats();
    EXPECT_EQ(decodes, 3);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 3u);
    EXPECT_EQ(s.entries, 0u);
}

TEST(DecodedCache, EvictedValueStaysAliveForHolder)
{
    DecodedWindowCache cache(1);
    auto a = cache.get(key(0, 0), 1, [](SampleSpan out) {
        out[0] = 7.0;
        return std::size_t{1};
    });
    cache.get(key(1, 0), 1, [](SampleSpan out) {
        out[0] = 8.0;
        return std::size_t{1};
    });
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a.samples()[0], 7.0); // still valid after eviction
}

TEST(DecodedCache, ReleasedSlotsRecycleThroughTheSlabPool)
{
    // A cache under LRU churn reuses pooled slots instead of
    // allocating one per miss: with capacity 1 and no held handles,
    // any number of distinct keys needs at most two slots (the
    // resident window plus the one being decoded).
    DecodedWindowCache cache(1);
    for (int q = 0; q < 32; ++q)
        cache.get(key(q, 0), 8, [](SampleSpan out) {
            out[0] = 1.0;
            return std::size_t{1};
        });
    const auto s = cache.stats();
    EXPECT_EQ(s.misses, 32u);
    EXPECT_LE(s.slotsAllocated, 2u);

    // Holding a handle across eviction pins exactly one extra slot.
    auto held = cache.get(key(100, 0), 8, [](SampleSpan out) {
        out[0] = 5.0;
        return std::size_t{1};
    });
    for (int q = 0; q < 16; ++q)
        cache.get(key(q, 1), 8, [](SampleSpan out) {
            out[0] = 2.0;
            return std::size_t{1};
        });
    EXPECT_EQ(held.samples()[0], 5.0);
    EXPECT_LE(cache.stats().slotsAllocated, 3u);
}

TEST(DecodedCache, DecodeExceptionReturnsSlotToPool)
{
    // A throwing decode (corrupt channel, non-windowed codec) must
    // not drain the slab pool: the acquired slot goes back before
    // the exception escapes.
    DecodedWindowCache cache(4);
    for (int i = 0; i < 8; ++i) {
        EXPECT_THROW(
            cache.get(key(0, 0), 8,
                      [](SampleSpan) -> std::size_t {
                          throw std::runtime_error("bad gate");
                      }),
            std::runtime_error);
    }
    const auto s = cache.stats();
    EXPECT_LE(s.slotsAllocated, 1u);
    EXPECT_EQ(s.entries, 0u);
}

TEST(DecodedCache, PrefetchCountersTrackClaims)
{
    DecodedWindowCache cache(2);
    int decodes = 0;
    auto fill = [&](SampleSpan out) -> std::size_t {
        ++decodes;
        out[0] = 3.0;
        return 1;
    };
    // Cold prefetch: decodes, inserts, pins — and touches neither
    // demand counter.
    const auto pin = cache.prefetch(key(0, 0), 1, fill);
    ASSERT_TRUE(pin);
    EXPECT_EQ(decodes, 1);
    auto s = cache.stats();
    EXPECT_EQ(s.prefetches, 1u);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);

    // First demand get claims it: a hit (no decode) plus exactly one
    // prefetchHit; later gets are plain hits.
    const auto v = cache.get(key(0, 0), 1, fill);
    EXPECT_EQ(decodes, 1);
    EXPECT_EQ(v.samples()[0], 3.0);
    cache.get(key(0, 0), 1, fill);
    s = cache.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.prefetchHits, 1u);
    EXPECT_EQ(s.prefetchWasted, 0u);
}

TEST(DecodedCache, UnclaimedPrefetchCountsWasted)
{
    DecodedWindowCache cache(1);
    auto fill = [](SampleSpan out) -> std::size_t {
        out[0] = 1.0;
        return 1;
    };
    cache.prefetch(key(0, 0), 1, fill);
    // Evicted by demand traffic before any get() touched it.
    cache.get(key(1, 0), 1, fill);
    auto s = cache.stats();
    EXPECT_EQ(s.prefetches, 1u);
    EXPECT_EQ(s.prefetchHits, 0u);
    EXPECT_EQ(s.prefetchWasted, 1u);

    // clear() resolves still-unclaimed prefetches as wasted too.
    cache.prefetch(key(2, 0), 1, fill);
    cache.clear();
    s = cache.stats();
    EXPECT_EQ(s.prefetches, 2u);
    EXPECT_EQ(s.prefetchWasted, 2u);
}

TEST(DecodedCache, PrefetchIsANoOpWhenDisabledOrResident)
{
    int decodes = 0;
    auto fill = [&](SampleSpan out) -> std::size_t {
        ++decodes;
        out[0] = 1.0;
        return 1;
    };
    // Disabled cache: null handle, no decode, no counters.
    DecodedWindowCache off(0);
    EXPECT_FALSE(off.prefetch(key(0, 0), 1, fill));
    EXPECT_EQ(decodes, 0);
    EXPECT_EQ(off.stats().prefetches, 0u);

    // Resident key: recency refresh only — no decode, no counters,
    // but the entry becomes MRU and survives the next eviction.
    DecodedWindowCache cache(2);
    cache.get(key(0, 0), 1, fill); // [k0]
    cache.get(key(1, 0), 1, fill); // [k1 k0]
    EXPECT_EQ(decodes, 2);
    EXPECT_FALSE(cache.prefetch(key(0, 0), 1, fill)); // [k0 k1]
    EXPECT_EQ(decodes, 2);
    EXPECT_EQ(cache.stats().prefetches, 0u);
    cache.get(key(2, 0), 1, fill); // evicts k1, not k0
    cache.get(key(0, 0), 1, fill);
    const auto s = cache.stats();
    EXPECT_EQ(decodes, 3);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.evictions, 1u);
}

TEST(DecodedCache, BitExactVsGoldenDecoder)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);

    DecodedWindowCache cache(1 << 14);
    const core::Decompressor dec;
    for (const auto &[id, e] : clib.entries()) {
        const core::CompressedChannel *channels[2] = {&e.cw.i,
                                                      &e.cw.q};
        for (std::uint8_t ch = 0; ch < 2; ++ch) {
            const auto &channel = *channels[ch];
            // Assemble the channel from cached windows (run twice so
            // the second pass replays from cache).
            for (int pass = 0; pass < 2; ++pass) {
                std::vector<double> assembled;
                for (std::uint32_t w = 0;
                     w < channel.windows.size(); ++w) {
                    const auto v = cache.get(
                        {id, ch, w}, channel.windowSize,
                        [&](SampleSpan out) {
                            return dec.decompressWindowInto(
                                channel, e.cw.codec, w, out);
                        });
                    const auto s = v.samples();
                    assembled.insert(assembled.end(), s.begin(),
                                     s.end());
                }
                const auto golden =
                    dec.decompressChannel(channel, e.cw.codec);
                ASSERT_EQ(assembled, golden)
                    << waveform::toString(id) << " ch "
                    << static_cast<int>(ch) << " pass " << pass;
            }
        }
    }
    const auto s = cache.stats();
    EXPECT_GT(s.hits, 0u);
    EXPECT_EQ(s.evictions, 0u);
}

TEST(DecodedCache, DefaultWindowHookMatchesChannelSlice)
{
    // The base-class decompressWindow (decode-and-slice) must agree
    // with decompressChannel for codecs that do not override it.
    const auto wf = waveform::drag(144, 36.0, 0.2, 1.2);
    const core::Compressor comp({"dct-w", 16, 1e-3});
    const auto cw = comp.compress(wf);
    const core::Decompressor dec;
    const auto golden = dec.decompressChannel(cw.i, cw.codec);
    std::vector<double> assembled;
    std::vector<double> window;
    for (std::uint32_t w = 0; w < cw.i.windows.size(); ++w) {
        dec.decompressWindow(cw.i, cw.codec, w, window);
        assembled.insert(assembled.end(), window.begin(),
                         window.end());
    }
    EXPECT_EQ(assembled, golden);

    // DCT-N's single whole-waveform window slices the same way.
    const core::Compressor whole({"dct-n", 0, 1e-3});
    const auto cwn = whole.compress(wf);
    ASSERT_EQ(cwn.i.windows.size(), 1u);
    dec.decompressWindow(cwn.i, cwn.codec, 0, window);
    EXPECT_EQ(window, dec.decompressChannel(cwn.i, cwn.codec));
}

// ----------------------------------------------- hierarchical store

/** An 8-sample decode hook stamping a per-key fingerprint, plus a
 *  decode counter — enough to watch admission decisions. */
struct CountingDecoder
{
    int decodes = 0;

    auto
    fill(const DecodedWindowKey &k)
    {
        return [this, k](SampleSpan out) -> std::size_t {
            ++decodes;
            for (std::size_t i = 0; i < out.size(); ++i)
                out[i] = static_cast<double>(k.gate.q0 * 1000 +
                                             k.window * 10 + i);
            return out.size();
        };
    }
};

TEST(TieredStore, SampleBudgetBoundsResidency)
{
    TieredStoreConfig cfg;
    cfg.tier0 = {100, 16}; // window cap slack; budget binds at 16
    TieredWindowStore store(cfg);
    CountingDecoder dec;
    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    store.get(key(1, 0), 8, dec.fill(key(1, 0)));
    auto s = store.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.residentSamples, 16u);
    EXPECT_EQ(s.tier[0].residentSamples, 16u);

    // A third window overflows the sample budget: the LRU entry
    // (qubit 0) is evicted even though the window cap has room.
    store.get(key(2, 0), 8, dec.fill(key(2, 0)));
    s = store.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.residentSamples, 16u);
    EXPECT_EQ(s.evictions, 1u);
    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    EXPECT_EQ(dec.decodes, 4); // qubit 0 really was dropped

    // One oversized window may exceed the whole budget on its own:
    // the budget never evicts the sole resident entry.
    TieredStoreConfig tiny;
    tiny.tier0 = {100, 4};
    TieredWindowStore wide(tiny);
    CountingDecoder wdec;
    wide.get(key(7, 0), 32, wdec.fill(key(7, 0)));
    s = wide.stats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.residentSamples, 32u);
    EXPECT_EQ(s.evictions, 0u);
    wide.get(key(8, 0), 32, wdec.fill(key(8, 0)));
    s = wide.stats();
    EXPECT_EQ(s.entries, 1u); // over budget: back down to one
    EXPECT_EQ(s.evictions, 1u);
}

TEST(TieredStore, AdmitAlwaysDemotesAndPromotesAcrossTiers)
{
    TieredStoreConfig cfg;
    cfg.tier0 = {1, 0};
    cfg.tier1 = {2, 0};
    cfg.tier1PenaltyCycles = 8;
    TieredWindowStore store(cfg);
    ASSERT_TRUE(store.tiered());
    CountingDecoder dec;

    store.get(key(0, 0), 8, dec.fill(key(0, 0))); // A -> tier 0
    store.get(key(1, 0), 8, dec.fill(key(1, 0))); // B -> t0, A -> t1
    auto s = store.stats();
    EXPECT_EQ(s.demotions, 1u);
    EXPECT_EQ(s.tier[0].entries, 1u);
    EXPECT_EQ(s.tier[1].entries, 1u);

    // A is served from tier 1 (penalty charged, tier-0 miss + tier-1
    // hit recorded) and — having proven reuse by being demoted —
    // promotes straight back, demoting B.
    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    s = store.stats();
    EXPECT_EQ(dec.decodes, 2); // no re-decode: the hierarchy served it
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.tier[1].hits, 1u);
    EXPECT_EQ(s.tier[0].misses, 3u); // 2 cold + 1 tier-1-served
    EXPECT_EQ(s.promotions, 1u);
    EXPECT_EQ(s.demotions, 2u);
    // tier-1 traffic: demote A, hit A, demote B.
    EXPECT_EQ(s.tier1Accesses, 3u);
    EXPECT_EQ(s.penaltyCycles, 3u * 8u);
    EXPECT_NEAR(s.tier0HitRate(), 0.0, 1e-12);
    EXPECT_NEAR(s.hitRate(), 1.0 / 3.0, 1e-12);
}

TEST(TieredStore, SecondTouchStagesInSlowTierUntilReuse)
{
    TieredStoreConfig cfg;
    cfg.tier0 = {4, 0};
    cfg.tier1 = {4, 0};
    cfg.admission = AdmissionPolicy::SecondTouch;
    TieredWindowStore store(cfg);
    CountingDecoder dec;

    // First touch: rejected from tier 0, staged in tier 1.
    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    auto s = store.stats();
    EXPECT_EQ(s.tier[0].admitRejected, 1u);
    EXPECT_EQ(s.tier[1].admitted, 1u);
    EXPECT_EQ(s.tier[0].entries, 0u);
    EXPECT_EQ(s.tier[1].entries, 1u);

    // Second touch hits tier 1; third touch promotes.
    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    s = store.stats();
    EXPECT_EQ(dec.decodes, 1);
    EXPECT_EQ(s.tier[1].hits, 2u);
    EXPECT_EQ(s.promotions, 1u);
    EXPECT_EQ(s.tier[0].entries, 1u);
    EXPECT_EQ(s.tier[1].entries, 0u);
}

TEST(TieredStore, SecondTouchGhostAdmitsOnReuseWithoutSlowTier)
{
    // With no tier 1 the first touch is served but cached nowhere;
    // the ghost list remembers it, so the second miss admits.
    TieredStoreConfig cfg;
    cfg.tier0 = {4, 0};
    cfg.admission = AdmissionPolicy::SecondTouch;
    TieredWindowStore store(cfg);
    CountingDecoder dec;

    auto first = store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    EXPECT_EQ(first.size(), 8u); // bypass still serves the decode
    auto s = store.stats();
    EXPECT_EQ(s.tier[0].admitRejected, 1u);
    EXPECT_EQ(s.entries, 0u);

    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    s = store.stats();
    EXPECT_EQ(dec.decodes, 2); // the bypass pass was not cached
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.tier[0].admitted, 1u);
    EXPECT_EQ(s.entries, 1u);

    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    EXPECT_EQ(dec.decodes, 2);
    EXPECT_EQ(store.stats().hits, 1u);
}

TEST(TieredStore, TinyLfuChallengesTheVictimFrequency)
{
    TieredStoreConfig cfg;
    cfg.tier0 = {2, 0};
    cfg.admission = AdmissionPolicy::TinyLfu;
    TieredWindowStore store(cfg);
    CountingDecoder dec;

    // Warm A and B to frequency 2 each (every probe feeds the
    // sketch).
    for (int pass = 0; pass < 2; ++pass) {
        store.get(key(0, 0), 8, dec.fill(key(0, 0)));
        store.get(key(1, 0), 8, dec.fill(key(1, 0)));
    }
    ASSERT_EQ(dec.decodes, 2);

    // A cold challenger cannot displace a warmer victim: the first
    // two C touches lose the frequency duel and bypass the cache.
    store.get(key(2, 0), 8, dec.fill(key(2, 0)));
    store.get(key(2, 0), 8, dec.fill(key(2, 0)));
    auto s = store.stats();
    EXPECT_EQ(s.tier[0].admitRejected, 2u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(dec.decodes, 4); // rejected C decodes every time

    // Third touch: C's estimate (3) now beats the LRU victim's (2),
    // so it is admitted and the victim is dropped.
    store.get(key(2, 0), 8, dec.fill(key(2, 0)));
    s = store.stats();
    EXPECT_EQ(s.tier[0].admitted, 3u);
    EXPECT_EQ(s.evictions, 1u);
    store.get(key(2, 0), 8, dec.fill(key(2, 0)));
    EXPECT_EQ(dec.decodes, 5);
    EXPECT_EQ(store.stats().hits, 3u); // warm passes + resident C
}

TEST(TieredStore, EvictionUnderTierPressureKeepsPinnedWindowAlive)
{
    TieredStoreConfig cfg;
    cfg.tier0 = {1, 0};
    cfg.tier1 = {1, 0};
    TieredWindowStore store(cfg);
    CountingDecoder dec;

    auto pinned = store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    const std::vector<double> want(pinned.samples().begin(),
                                   pinned.samples().end());

    // B demotes A; C demotes B, which pushes A out of tier 1
    // entirely — while the caller still holds its handle.
    store.get(key(1, 0), 8, dec.fill(key(1, 0)));
    store.get(key(2, 0), 8, dec.fill(key(2, 0)));
    auto s = store.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.tier[1].evictions, 1u);
    EXPECT_EQ(s.demotions, 2u);
    EXPECT_EQ(s.entries, 2u);

    // The pinned handle still reads the original samples.
    ASSERT_TRUE(pinned);
    EXPECT_EQ(std::vector<double>(pinned.samples().begin(),
                                  pinned.samples().end()),
              want);

    // Releasing the pin recycles the slot: the next fill reuses it
    // instead of carving a new one.
    const auto before = store.stats().slotsAllocated;
    pinned = {};
    store.get(key(3, 0), 8, dec.fill(key(3, 0)));
    EXPECT_EQ(store.stats().slotsAllocated, before);
}

TEST(TieredStore, LookupPutBatchPathMatchesGetStats)
{
    // The batch-fill protocol (lookup, decode outside the lock, put)
    // must land on exactly the same stats as the blocking get()
    // path, policy by policy.
    const DecodedWindowKey trace[] = {key(0, 0), key(1, 0), key(0, 0),
                                      key(2, 0), key(0, 0), key(1, 0),
                                      key(2, 0), key(2, 0), key(3, 0)};
    for (const auto policy :
         {AdmissionPolicy::AdmitAlways, AdmissionPolicy::SecondTouch,
          AdmissionPolicy::TinyLfu}) {
        TieredStoreConfig cfg;
        cfg.tier0 = {2, 0};
        cfg.tier1 = {2, 0};
        cfg.admission = policy;
        TieredWindowStore viaGet(cfg);
        TieredWindowStore viaPut(cfg);
        CountingDecoder gdec, pdec;
        for (const auto &k : trace) {
            viaGet.get(k, 8, gdec.fill(k));
            if (auto h = viaPut.lookup(k); !h) {
                std::vector<double> buf(8);
                pdec.fill(k)(SampleSpan(buf.data(), buf.size()));
                viaPut.put(k, {buf.data(), buf.size()}, 8);
            }
        }
        EXPECT_EQ(gdec.decodes, pdec.decodes) << admissionPolicyName(policy);
        const auto a = viaGet.stats();
        const auto b = viaPut.stats();
        EXPECT_EQ(a.hits, b.hits) << admissionPolicyName(policy);
        EXPECT_EQ(a.misses, b.misses) << admissionPolicyName(policy);
        EXPECT_EQ(a.evictions, b.evictions) << admissionPolicyName(policy);
        EXPECT_EQ(a.promotions, b.promotions) << admissionPolicyName(policy);
        EXPECT_EQ(a.demotions, b.demotions) << admissionPolicyName(policy);
        EXPECT_EQ(a.tier1Accesses, b.tier1Accesses)
            << admissionPolicyName(policy);
        EXPECT_EQ(a.penaltyCycles, b.penaltyCycles)
            << admissionPolicyName(policy);
        EXPECT_EQ(a.entries, b.entries) << admissionPolicyName(policy);
        EXPECT_EQ(a.residentSamples, b.residentSamples)
            << admissionPolicyName(policy);
        for (std::size_t t = 0; t < 2; ++t) {
            EXPECT_EQ(a.tier[t].hits, b.tier[t].hits)
                << admissionPolicyName(policy) << " tier " << t;
            EXPECT_EQ(a.tier[t].misses, b.tier[t].misses)
                << admissionPolicyName(policy) << " tier " << t;
            EXPECT_EQ(a.tier[t].admitted, b.tier[t].admitted)
                << admissionPolicyName(policy) << " tier " << t;
            EXPECT_EQ(a.tier[t].admitRejected,
                      b.tier[t].admitRejected)
                << admissionPolicyName(policy) << " tier " << t;
            EXPECT_EQ(a.tier[t].entries, b.tier[t].entries)
                << admissionPolicyName(policy) << " tier " << t;
        }
    }
}

TEST(TieredStore, SingleFlightDecodesColdKeyOnce)
{
    TieredStoreConfig cfg;
    cfg.tier0 = {8, 0};
    TieredWindowStore store(cfg);
    constexpr int kThreads = 8;
    std::atomic<int> decodes{0};
    std::atomic<int> arrived{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            arrived.fetch_add(1);
            const auto h =
                store.get(key(0, 0), 8, [&](SampleSpan out) {
                    // Give the pack time to pile onto the latch;
                    // correctness does not depend on the timing.
                    decodes.fetch_add(1);
                    while (arrived.load() < kThreads)
                        std::this_thread::yield();
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                    for (std::size_t i = 0; i < out.size(); ++i)
                        out[i] = static_cast<double>(i);
                    return out.size();
                });
            ASSERT_TRUE(h);
            ASSERT_EQ(h.size(), 8u);
        });
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(decodes.load(), 1);
    const auto s = store.stats();
    // Every thread lands in exactly one column: the leader is a
    // miss; a waiter probes a miss, then latches and wakes to a
    // duplicate avoided; a late arrival is a plain hit.
    EXPECT_EQ(s.hits + s.duplicateDecodesAvoided,
              static_cast<std::uint64_t>(kThreads - 1));
    EXPECT_EQ(s.misses, 1u + s.duplicateDecodesAvoided);
    EXPECT_GT(s.duplicateDecodesAvoided, 0u);
}

TEST(TieredStore, BitExactVsSingleTierAcrossPolicies)
{
    // The hierarchy is a placement policy, not a data path: every
    // decoded window must be bit-identical to the flat store's, for
    // every admission policy, even when tiny tiers force constant
    // demotion and re-decode.
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    const core::Decompressor dec;

    const auto assemble = [&](TieredWindowStore &store) {
        std::vector<double> all;
        for (int pass = 0; pass < 2; ++pass)
            for (const auto &[id, e] : clib.entries()) {
                const core::CompressedChannel *chs[2] = {&e.cw.i,
                                                         &e.cw.q};
                for (std::uint8_t ch = 0; ch < 2; ++ch)
                    for (std::uint32_t w = 0;
                         w < chs[ch]->windows.size(); ++w) {
                        const auto v = store.get(
                            {id, ch, w}, chs[ch]->windowSize,
                            [&](SampleSpan out) {
                                return dec.decompressWindowInto(
                                    *chs[ch], e.cw.codec, w, out);
                            });
                        all.insert(all.end(), v.samples().begin(),
                                   v.samples().end());
                    }
            }
        return all;
    };

    TieredWindowStore flat(1 << 14);
    const auto golden = assemble(flat);
    ASSERT_FALSE(golden.empty());
    for (const auto policy :
         {AdmissionPolicy::AdmitAlways, AdmissionPolicy::SecondTouch,
          AdmissionPolicy::TinyLfu}) {
        TieredStoreConfig cfg;
        cfg.tier0 = {16, 0};
        cfg.tier1 = {64, 0};
        cfg.admission = policy;
        TieredWindowStore tiered(cfg);
        EXPECT_EQ(assemble(tiered), golden) << admissionPolicyName(policy);
        const auto s = tiered.stats();
        EXPECT_GT(s.tier[1].admitted + s.demotions, 0u)
            << admissionPolicyName(policy) << ": tiers never engaged";
    }
}

TEST(TieredStore, RegistryCountersTrackTierTraffic)
{
    auto &reg = telemetry::Registry::global();
    const std::uint64_t hit0 = reg.counter("cache.tier0.hit").value();
    const std::uint64_t hit1 = reg.counter("cache.tier1.hit").value();
    const std::uint64_t miss0 =
        reg.counter("cache.tier0.miss").value();
    const std::uint64_t promote0 =
        reg.counter("cache.tier0.promote").value();
    const std::uint64_t demote0 =
        reg.counter("cache.tier0.demote").value();
    const std::uint64_t rejected0 =
        reg.counter("cache.tier0.admit_rejected").value();

    TieredStoreConfig cfg;
    cfg.tier0 = {1, 0};
    cfg.tier1 = {2, 0};
    TieredWindowStore store(cfg);
    CountingDecoder dec;
    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    store.get(key(1, 0), 8, dec.fill(key(1, 0))); // demotes A
    store.get(key(0, 0), 8, dec.fill(key(0, 0))); // t1 hit, promotes
    store.get(key(0, 0), 8, dec.fill(key(0, 0))); // t0 hit
    const auto s = store.stats();

    EXPECT_EQ(reg.counter("cache.tier0.hit").value() - hit0,
              s.tier[0].hits);
    EXPECT_EQ(reg.counter("cache.tier1.hit").value() - hit1,
              s.tier[1].hits);
    EXPECT_EQ(reg.counter("cache.tier0.miss").value() - miss0,
              s.tier[0].misses);
    EXPECT_EQ(reg.counter("cache.tier0.promote").value() - promote0,
              s.promotions);
    EXPECT_EQ(reg.counter("cache.tier0.demote").value() - demote0,
              s.demotions);
    EXPECT_EQ(
        reg.counter("cache.tier0.admit_rejected").value() - rejected0,
        s.tier[0].admitRejected);
    EXPECT_GT(s.tier[1].hits, 0u);
    EXPECT_GT(s.promotions, 0u);
}

TEST(TieredStore, StatsAccumulateAndDeltaRoundTrip)
{
    TieredStoreConfig cfg;
    cfg.tier0 = {1, 0};
    cfg.tier1 = {2, 0};
    TieredWindowStore store(cfg);
    CountingDecoder dec;
    const auto before = store.stats();
    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    store.get(key(1, 0), 8, dec.fill(key(1, 0)));
    store.get(key(0, 0), 8, dec.fill(key(0, 0)));
    const auto after = store.stats();

    const auto d = TieredStoreStats::delta(before, after);
    EXPECT_EQ(d.hits, after.hits);
    EXPECT_EQ(d.misses, after.misses);
    EXPECT_EQ(d.entries, after.entries); // latches take the endpoint
    EXPECT_EQ(d.residentSamples, after.residentSamples);

    TieredStoreStats sum;
    sum.accumulate(after);
    sum.accumulate(after);
    EXPECT_EQ(sum.hits, 2 * after.hits);
    EXPECT_EQ(sum.tier[1].hits, 2 * after.tier[1].hits);
    EXPECT_EQ(sum.penaltyCycles, 2 * after.penaltyCycles);
    EXPECT_EQ(sum.entries, after.entries);
    EXPECT_EQ(sum.residentSamples, after.residentSamples);
}

// --------------------------------------------------------------- executor

TEST(Executor, RunsEveryJobExactlyOnce)
{
    for (const int workers : {1, 2, 8}) {
        common::Executor exec(workers);
        std::vector<int> counts(257, 0);
        exec.forEach(counts.size(), [&](std::size_t i) {
            // Each index is claimed by exactly one worker, so no
            // synchronization is needed on counts[i].
            counts[i] += 1;
        });
        for (std::size_t i = 0; i < counts.size(); ++i)
            ASSERT_EQ(counts[i], 1)
                << "workers=" << workers << " i=" << i;
    }
}

TEST(Executor, PropagatesFirstException)
{
    for (const int workers : {1, 4}) {
        common::Executor exec(workers);
        EXPECT_THROW(exec.forEach(16,
                                  [](std::size_t i) {
                                      if (i == 5)
                                          throw std::runtime_error(
                                              "job failed");
                                  }),
                     std::runtime_error)
            << "workers=" << workers;
    }
}

TEST(Executor, ReusableAcrossBatches)
{
    common::Executor exec(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> ran{0};
        exec.forEach(32, [&](std::size_t) { ++ran; });
        ASSERT_EQ(ran.load(), 32);
    }
}

// ------------------------------------------- rack + service end to end

/** Shared 49-qubit surface-code fixture (expensive to compress; built
 *  once for the suite). */
class RackSurface49 : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        const auto sc = circuits::makeSurfaceCode(
            5, circuits::SurfaceLayout::Rotated, 1);
        dev_ = new waveform::DeviceModel(
            waveform::DeviceModel::synthetic(
                "surface49-device", sc.totalQubits(),
                sc.nativeCoupling().edges()));
        lib_ = new waveform::PulseLibrary(
            waveform::PulseLibrary::build(*dev_));
        clib_ = new core::CompressedLibrary(buildCompressed(*lib_));
        sched_ = new circuits::Schedule(
            circuits::schedule(sc.circuit, {}));
    }

    static void
    TearDownTestSuite()
    {
        delete sched_;
        delete clib_;
        delete lib_;
        delete dev_;
        sched_ = nullptr;
        clib_ = nullptr;
        lib_ = nullptr;
        dev_ = nullptr;
    }

    RackConfig
    rackConfig(int shards, std::size_t cache_windows) const
    {
        RackConfig rc;
        rc.numShards = shards;
        rc.policy = ShardPolicy::LocalityAware;
        rc.controller = controllerConfig(*clib_);
        rc.cacheWindows = cache_windows;
        return rc;
    }

    static waveform::DeviceModel *dev_;
    static waveform::PulseLibrary *lib_;
    static core::CompressedLibrary *clib_;
    static circuits::Schedule *sched_;
};

waveform::DeviceModel *RackSurface49::dev_ = nullptr;
waveform::PulseLibrary *RackSurface49::lib_ = nullptr;
core::CompressedLibrary *RackSurface49::clib_ = nullptr;
circuits::Schedule *RackSurface49::sched_ = nullptr;

TEST_F(RackSurface49, StatsRollupIsConsistent)
{
    // Cache sized to the workload's unique-window working set, so
    // the batch's second circuit replays from cache.
    const Rack rack(*dev_, *clib_, rackConfig(4, 1 << 15));
    RuntimeService svc(rack, {.workers = 1});
    const auto stats = svc.executeBatch({*sched_, *sched_});

    ASSERT_EQ(stats.shards.size(), 4u);
    std::uint64_t gates = 0, samples = 0, windows = 0;
    std::size_t banks = 0;
    for (const auto &sh : stats.shards) {
        gates += sh.gatesPlayed;
        samples += sh.samplesDecoded;
        windows += sh.windowsDecoded;
        banks += sh.demand.peakBanks;
        // Every sample the demand model charges is decoded by
        // playback, and vice versa.
        EXPECT_EQ(sh.samplesDecoded, sh.demand.totalSamples);
        EXPECT_EQ(sh.demand.missingGates, 0u);
    }
    EXPECT_EQ(stats.totalGates, gates);
    EXPECT_EQ(stats.totalSamples, samples);
    EXPECT_EQ(stats.totalWindows, windows);
    EXPECT_EQ(stats.fleetPeakBanks, banks);
    EXPECT_GT(stats.totalGates, 0u);
    EXPECT_TRUE(stats.feasible);
    // Same schedule twice through a shared cache: plenty of hits.
    EXPECT_GT(stats.cacheHitRate, 0.4);
    EXPECT_EQ(stats.cache.hits + stats.cache.misses,
              stats.totalWindows);
}

TEST_F(RackSurface49, WorkerCountDoesNotChangeDemand)
{
    // The acceptance contract: 8-worker execution of a 49-qubit
    // surface-code batch is bit-identical, shard by shard, to
    // 1-worker execution.
    const std::vector<circuits::Schedule> batch = {*sched_, *sched_,
                                                   *sched_};
    std::vector<RackStats> runs;
    for (const int workers : {1, 8}) {
        const Rack rack(*dev_, *clib_, rackConfig(8, 4096));
        RuntimeService svc(rack, {.workers = workers});
        runs.push_back(svc.executeBatch(batch));
    }
    const auto &one = runs[0], &many = runs[1];
    ASSERT_EQ(one.shards.size(), many.shards.size());
    for (std::size_t s = 0; s < one.shards.size(); ++s) {
        const auto &a = one.shards[s].demand;
        const auto &b = many.shards[s].demand;
        EXPECT_EQ(a.peakBanks, b.peakBanks) << "shard " << s;
        EXPECT_EQ(a.peakChannels, b.peakChannels) << "shard " << s;
        EXPECT_EQ(a.feasible, b.feasible) << "shard " << s;
        EXPECT_EQ(a.totalSamples, b.totalSamples) << "shard " << s;
        EXPECT_EQ(a.totalWordsRead, b.totalWordsRead)
            << "shard " << s;
        EXPECT_EQ(a.missingGates, b.missingGates) << "shard " << s;
        // Bandwidth is a product of identical ints and doubles.
        EXPECT_EQ(a.peakBandwidthBytesPerSec,
                  b.peakBandwidthBytesPerSec)
            << "shard " << s;
        EXPECT_EQ(one.shards[s].gatesPlayed, many.shards[s].gatesPlayed);
        EXPECT_EQ(one.shards[s].samplesDecoded,
                  many.shards[s].samplesDecoded);
        EXPECT_EQ(one.shards[s].windowsDecoded,
                  many.shards[s].windowsDecoded);
    }
    EXPECT_EQ(one.fleetPeakBanks, many.fleetPeakBanks);
    EXPECT_EQ(one.totalGates, many.totalGates);
    EXPECT_EQ(one.totalSamples, many.totalSamples);
}

TEST_F(RackSurface49, TieredRackDemandMatchesFlatAtAnyWorkerCount)
{
    // The hierarchy is invisible to the playback contract: a tiered
    // rack under every admission policy reproduces the flat rack's
    // per-shard demand and decode totals bit-for-bit, at 1 and 8
    // workers, while windows really do flow through tier 1.
    const std::vector<circuits::Schedule> batch = {*sched_, *sched_};
    const Rack flat(*dev_, *clib_, rackConfig(8, 4096));
    RuntimeService ref(flat, {.workers = 1});
    const auto base = ref.executeBatch(batch);

    for (const auto policy :
         {AdmissionPolicy::AdmitAlways, AdmissionPolicy::SecondTouch,
          AdmissionPolicy::TinyLfu}) {
        for (const int workers : {1, 8}) {
            RackConfig rc = rackConfig(8, 256);
            rc.tier1Windows = 4096;
            rc.admission = policy;
            const Rack rack(*dev_, *clib_, rc);
            RuntimeService svc(rack, {.workers = workers});
            const auto got = svc.executeBatch(batch);
            const std::string tag =
                std::string(admissionPolicyName(policy)) +
                " workers " + std::to_string(workers);
            ASSERT_EQ(base.shards.size(), got.shards.size()) << tag;
            for (std::size_t s = 0; s < base.shards.size(); ++s) {
                const auto &a = base.shards[s];
                const auto &b = got.shards[s];
                EXPECT_EQ(a.demand.totalSamples,
                          b.demand.totalSamples)
                    << tag << " shard " << s;
                EXPECT_EQ(a.demand.totalWordsRead,
                          b.demand.totalWordsRead)
                    << tag << " shard " << s;
                EXPECT_EQ(a.demand.peakBanks, b.demand.peakBanks)
                    << tag << " shard " << s;
                EXPECT_EQ(a.gatesPlayed, b.gatesPlayed)
                    << tag << " shard " << s;
                EXPECT_EQ(a.samplesDecoded, b.samplesDecoded)
                    << tag << " shard " << s;
                EXPECT_EQ(a.windowsDecoded, b.windowsDecoded)
                    << tag << " shard " << s;
            }
            EXPECT_EQ(base.totalGates, got.totalGates) << tag;
            EXPECT_EQ(base.totalSamples, got.totalSamples) << tag;
            EXPECT_EQ(base.totalWindows, got.totalWindows) << tag;
            // The tiny fast tier forces real tier-1 traffic.
            EXPECT_GT(got.cache.tier[1].admitted +
                          got.cache.demotions,
                      0u)
                << tag;
        }
    }
}

TEST_F(RackSurface49, HotBatchRunsAlmostEntirelyFromCache)
{
    const Rack rack(*dev_, *clib_, rackConfig(4, 1 << 15));
    RuntimeService svc(rack, {.workers = 2});
    svc.execute(*sched_); // cold pass fills the cache
    const auto warm = svc.execute(*sched_);
    EXPECT_GT(warm.cacheHitRate, 0.99);
    EXPECT_EQ(warm.cache.evictions, 0u);
}

TEST(RackUncompressed, BaselineRackSkipsDecodeAndCache)
{
    // An uncompressed-baseline rack never touches the compressed
    // payload, so even a non-windowed codec library executes fine
    // and the cache stays untouched.
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = core::CompressionPipeline::with("dct-n")
                          .mseTarget(1e-5)
                          .build()
                          .compressLibrary(lib);

    RackConfig rc;
    rc.numShards = 2;
    rc.controller.compressed = false;
    const Rack rack(dev, clib, rc);
    RuntimeService svc(rack, {.workers = 2});

    circuits::Circuit c(5);
    for (int q = 0; q < 5; ++q)
        c.x(q);
    c.measureAll();
    const auto stats = svc.execute(circuits::schedule(c, {}));
    EXPECT_EQ(stats.totalGates, 10u);
    EXPECT_GT(stats.totalSamples, 0u);
    EXPECT_EQ(stats.totalWindows, 0u);
    EXPECT_EQ(stats.cache.hits + stats.cache.misses, 0u);
    for (const auto &sh : stats.shards)
        EXPECT_EQ(sh.samplesDecoded, sh.demand.totalSamples);
}

TEST(RackMismatch, ReportsEventsNoShardOwns)
{
    // A schedule built for a larger machine than the rack's device:
    // the out-of-range events are dropped by partitioning but
    // reported, not silently lost.
    const auto dev = waveform::DeviceModel::ibm("bogota"); // 5 qubits
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);

    RackConfig rc;
    rc.numShards = 2;
    rc.controller = controllerConfig(clib);
    const Rack rack(dev, clib, rc);
    RuntimeService svc(rack);

    circuits::Circuit c(8);
    for (int q = 0; q < 8; ++q)
        c.x(q); // qubits 5-7 do not exist on the rack's device
    const auto stats = svc.execute(circuits::schedule(c, {}));
    EXPECT_EQ(stats.unownedEvents, 3u);
    EXPECT_EQ(stats.totalGates, 5u);
}

TEST_F(RackSurface49, PerJobRollupsSumToBatchTotal)
{
    const Rack rack(*dev_, *clib_, rackConfig(4, 4096));
    RuntimeService svc(rack, {.workers = 2});
    const auto exec =
        svc.executeBatchPerJob({*sched_, *sched_, *sched_});
    ASSERT_EQ(exec.jobs.size(), 3u);
    std::uint64_t gates = 0, samples = 0, windows = 0;
    for (const auto &job : exec.jobs) {
        gates += job.totalGates;
        samples += job.totalSamples;
        windows += job.totalWindows;
        // Cache counters and wall-clock attribute to the whole
        // batch, never to a job.
        EXPECT_EQ(job.cache.hits + job.cache.misses, 0u);
        EXPECT_EQ(job.wallSeconds, 0.0);
        ASSERT_EQ(job.shards.size(), exec.total.shards.size());
    }
    EXPECT_EQ(gates, exec.total.totalGates);
    EXPECT_EQ(samples, exec.total.totalSamples);
    EXPECT_EQ(windows, exec.total.totalWindows);
    // The batch-level rollup is the executeBatch() contract.
    EXPECT_GT(exec.total.cache.hits + exec.total.cache.misses, 0u);
    EXPECT_GT(exec.total.wallSeconds, 0.0);
}

TEST_F(RackSurface49, PerJobStatsIndependentOfBatchComposition)
{
    // A job's rollup is a pure function of (rack, schedule): the same
    // schedule reports identical per-job numbers alone and riding in
    // a larger coalesced batch — what makes serving-plane attribution
    // deterministic.
    const Rack rack(*dev_, *clib_, rackConfig(4, 1 << 15));
    RuntimeService svc(rack, {.workers = 4});
    const auto alone = svc.executeBatchPerJob({*sched_}).jobs[0];
    const auto mixed =
        svc.executeBatchPerJob({*sched_, *sched_, *sched_}).jobs[1];
    ASSERT_EQ(alone.shards.size(), mixed.shards.size());
    for (std::size_t s = 0; s < alone.shards.size(); ++s) {
        const auto &a = alone.shards[s];
        const auto &b = mixed.shards[s];
        EXPECT_EQ(a.demand.peakBanks, b.demand.peakBanks) << s;
        EXPECT_EQ(a.demand.totalSamples, b.demand.totalSamples) << s;
        EXPECT_EQ(a.demand.totalWordsRead, b.demand.totalWordsRead)
            << s;
        EXPECT_EQ(a.gatesPlayed, b.gatesPlayed) << s;
        EXPECT_EQ(a.windowsDecoded, b.windowsDecoded) << s;
        EXPECT_EQ(a.samplesDecoded, b.samplesDecoded) << s;
    }
    EXPECT_EQ(alone.totalGates, mixed.totalGates);
    EXPECT_EQ(alone.totalSamples, mixed.totalSamples);
    EXPECT_EQ(alone.fleetPeakBanks, mixed.fleetPeakBanks);
    EXPECT_EQ(alone.unownedEvents, mixed.unownedEvents);
}

TEST_F(RackSurface49, ShardCountPreservesFleetWork)
{
    // Total decoded work is invariant under the shard count; only
    // its distribution changes.
    std::vector<std::uint64_t> totals;
    for (const int shards : {1, 2, 8}) {
        const Rack rack(*dev_, *clib_, rackConfig(shards, 0));
        RuntimeService svc(rack, {.workers = 1});
        const auto stats = svc.execute(*sched_);
        totals.push_back(stats.totalSamples);
        EXPECT_EQ(static_cast<int>(stats.shards.size()), shards);
    }
    EXPECT_EQ(totals[0], totals[1]);
    EXPECT_EQ(totals[1], totals[2]);
}

// ------------------------------- adaptive playback through the rack

/** A bogota rack whose library was compiled with per-channel
 *  planning, plus a CX-heavy schedule that exercises the adaptive
 *  flat-top entries. */
struct AdaptiveRackFixture
{
    waveform::DeviceModel dev = waveform::DeviceModel::ibm("bogota");
    core::LibraryCompileResult compiled;
    circuits::Schedule sched;

    AdaptiveRackFixture()
    {
        const auto lib = waveform::PulseLibrary::build(dev);
        compiled = core::CompressionPipeline::with("int-dct")
                       .window(16)
                       .mseTarget(1e-5)
                       .planAdaptive()
                       .workers(2)
                       .build()
                       .compileLibrary(lib);
        circuits::Circuit c(5);
        for (const auto &[a, b] : dev.coupling())
            c.add(circuits::Op::CX, {a, b});
        for (int q = 0; q < 5; ++q)
            c.add(circuits::Op::X, {q});
        sched = circuits::schedule(c, {});
    }

    Rack
    makeRack(std::size_t cache_windows) const
    {
        RackConfig rc;
        rc.numShards = 2;
        rc.controller = controllerConfig(compiled.library);
        rc.cacheWindows = cache_windows;
        return Rack(dev, compiled.library, rc);
    }
};

TEST(RackAdaptive, FlatSegmentsBypassTheIdctDuringPlayback)
{
    const AdaptiveRackFixture fx;
    // The CR flat-tops went adaptive at compile time.
    ASSERT_GT(fx.compiled.stats.adaptiveChannels, 0u);

    const Rack rack = fx.makeRack(4096);
    RuntimeService svc(rack, {.workers = 2});
    const auto stats = svc.execute(fx.sched);

    // Expected bypass volume: the flat samples of every played gate.
    std::uint64_t expect_bypass = 0, expect_samples = 0;
    for (const auto &e : fx.sched.events) {
        const auto id = uarch::gateIdFor(e.gate);
        if (!id)
            continue;
        const auto &cw = fx.compiled.library.entry(*id).cw;
        expect_bypass +=
            cw.i.bypassSamples() + cw.q.bypassSamples();
        expect_samples += cw.stats().originalSamples;
    }
    ASSERT_GT(expect_bypass, 0u);
    EXPECT_EQ(stats.totalBypassSamples, expect_bypass);
    EXPECT_EQ(stats.totalSamples, expect_samples);
    // The demand model charges the same bypass the playback served.
    std::uint64_t demand_bypass = 0;
    for (const auto &sh : stats.shards)
        demand_bypass += sh.demand.bypassSamples;
    EXPECT_EQ(demand_bypass, expect_bypass);
    // Flat windows never enter the cache, so cache traffic covers
    // only the ramp windows.
    EXPECT_LT(stats.cache.hits + stats.cache.misses,
              stats.totalWindows);
}

TEST(RackAdaptive, CachedAndUncachedPlaybackAgree)
{
    const AdaptiveRackFixture fx;
    const Rack cachedRack = fx.makeRack(4096);
    const Rack uncachedRack = fx.makeRack(0);
    RuntimeService cached(cachedRack, {.workers = 1});
    RuntimeService uncached(uncachedRack, {.workers = 1});
    const auto a = cached.execute(fx.sched);
    const auto b = uncached.execute(fx.sched);
    EXPECT_EQ(a.totalSamples, b.totalSamples);
    EXPECT_EQ(a.totalBypassSamples, b.totalBypassSamples);
    EXPECT_EQ(a.totalWindows, b.totalWindows);
}

TEST(RackAdaptive, WorkerCountDoesNotChangeAdaptivePlayback)
{
    const AdaptiveRackFixture fx;
    std::vector<RackStats> runs;
    for (const int workers : {1, 8}) {
        const Rack rack = fx.makeRack(4096);
        RuntimeService svc(rack, {.workers = workers});
        runs.push_back(
            svc.executeBatch({fx.sched, fx.sched}));
    }
    EXPECT_EQ(runs[0].totalSamples, runs[1].totalSamples);
    EXPECT_EQ(runs[0].totalBypassSamples,
              runs[1].totalBypassSamples);
    EXPECT_EQ(runs[0].totalWindows, runs[1].totalWindows);
    for (std::size_t s = 0; s < runs[0].shards.size(); ++s) {
        EXPECT_EQ(runs[0].shards[s].samplesBypassed,
                  runs[1].shards[s].samplesBypassed);
        EXPECT_EQ(runs[0].shards[s].demand.bypassSamples,
                  runs[1].shards[s].demand.bypassSamples);
    }
}

TEST(RackAdaptive, ControllerPlaybackMatchesGoldenDecoder)
{
    // The acceptance contract: an adaptive entry plays back through
    // the hardware pipeline bit-exact with the software decoder,
    // with the IDCT engine bypassed on the flat segments.
    const AdaptiveRackFixture fx;
    uarch::Controller ctrl(controllerConfig(fx.compiled.library),
                           fx.compiled.library);
    const core::Decompressor dec;
    bool sawAdaptive = false;
    for (const auto &[id, e] : fx.compiled.library.entries()) {
        if (!e.cw.i.isAdaptive())
            continue;
        sawAdaptive = true;
        const auto played = ctrl.playGate(id);
        EXPECT_GT(played.stats.bypassSamples, 0u);
        const auto golden = dec.decompressChannel(e.cw.i, e.cw.codec);
        ASSERT_EQ(played.samples.size(), golden.size());
        for (std::size_t k = 0; k < golden.size(); ++k)
            ASSERT_EQ(played.samples[k],
                      dsp::IntDct::quantize(golden[k]))
                << waveform::toString(id) << " sample " << k;
    }
    EXPECT_TRUE(sawAdaptive);
}

// --------------------------------------------------- library registry

TEST(LibraryRegistry, PublishAssignsMonotonicVersionsAndTracksLives)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    auto a = std::make_shared<core::CompressedLibrary>(
        buildCompressed(lib));
    auto b = std::make_shared<core::CompressedLibrary>(
        buildCompressed(lib, 32));

    LibraryRegistry reg(a);
    const std::uint64_t v1 = reg.currentVersion();
    EXPECT_GT(v1, 0u);
    EXPECT_EQ(reg.swaps(), 0u);
    EXPECT_EQ(reg.current().lib.get(), a.get());
    EXPECT_EQ(reg.current().version, v1);

    const std::uint64_t v2 = reg.publish(b);
    EXPECT_GT(v2, v1);
    EXPECT_EQ(reg.swaps(), 1u);
    EXPECT_EQ(reg.current().lib.get(), b.get());

    // Both epochs are alive: the test still holds `a`.
    EXPECT_EQ(reg.liveVersions(), 2u);
    bool saw_current = false;
    for (const auto &info : reg.versions())
        if (info.current) {
            saw_current = true;
            EXPECT_EQ(info.version, v2);
        }
    EXPECT_TRUE(saw_current);

    // Drop the last external pin on the retired epoch: it leaves the
    // live set (the registry holds retirees only weakly).
    a.reset();
    EXPECT_EQ(reg.liveVersions(), 1u);
}

TEST(LibraryRegistry, PinnedEpochSurvivesLaterPublishes)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    auto a = std::make_shared<core::CompressedLibrary>(
        buildCompressed(lib));
    LibraryRegistry reg(a);
    a.reset();

    // An in-flight batch pins the epoch it started under; the swap
    // must not invalidate it (RCU grace period by refcount).
    const VersionedLibrary pinned = reg.current();
    reg.publish(std::make_shared<core::CompressedLibrary>(
        buildCompressed(lib, 32)));
    ASSERT_TRUE(pinned);
    EXPECT_GT(pinned->entries().size(), 0u);
    EXPECT_NE(pinned.version, reg.currentVersion());
    EXPECT_EQ(reg.liveVersions(), 2u); // `pinned` keeps it alive
}

TEST(RackSwap, SwapRejectsContractViolationsAndKeepsServing)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    auto good = std::make_shared<core::CompressedLibrary>(
        buildCompressed(lib));
    // Window size 32 violates a windowSize-16 controller contract.
    auto bad = std::make_shared<core::CompressedLibrary>(
        buildCompressed(lib, 32));

    RackConfig rc;
    rc.numShards = 2;
    rc.controller = controllerConfig(*good);
    Rack rack(dev, good, rc);
    const std::uint64_t v1 = rack.currentLibrary().version;
    EXPECT_THROW(rack.swapLibrary(nullptr), std::exception);
    EXPECT_THROW(rack.swapLibrary(bad), std::invalid_argument);
    // Failed swaps leave the current epoch untouched.
    EXPECT_EQ(rack.currentLibrary().version, v1);

    auto good2 = std::make_shared<core::CompressedLibrary>(
        buildCompressed(lib));
    const std::uint64_t v2 = rack.swapLibrary(good2);
    EXPECT_GT(v2, v1);
    EXPECT_EQ(rack.currentLibrary().version, v2);
}

TEST(RackSwap, StaleWindowsAgeOutWithoutAFlush)
{
    // Decoded-window keys carry the library version: after a swap the
    // old epoch's windows are unreachable (never served to the new
    // calibration) but NOT flushed — they age out through normal LRU
    // replacement while the new epoch's windows fill in beside them.
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    auto a = std::make_shared<core::CompressedLibrary>(
        buildCompressed(lib));
    auto b = std::make_shared<core::CompressedLibrary>(
        buildCompressed(lib));
    RackConfig rc;
    rc.numShards = 2;
    rc.controller = controllerConfig(*a);
    rc.cacheWindows = 1 << 14;
    Rack rack(dev, a, rc);
    RuntimeService svc(rack, {.workers = 1});

    circuits::Circuit c(5);
    for (int q = 0; q < 5; ++q)
        c.x(q);
    const auto sched = circuits::schedule(c, {});

    svc.execute(sched);                     // cold fill, epoch v1
    const auto warm = svc.execute(sched);   // all hits
    EXPECT_EQ(warm.cache.misses, 0u);
    EXPECT_GT(warm.cache.hits, 0u);

    rack.swapLibrary(b);
    // Same schedule, new epoch: the old windows are invisible, so
    // this pass decodes cold again — no flush was needed to keep the
    // calibrations apart.
    const auto fresh = svc.execute(sched);
    EXPECT_GT(fresh.cache.misses, 0u);
    const auto warm2 = svc.execute(sched);  // new epoch now warm
    EXPECT_EQ(warm2.cache.misses, 0u);
    EXPECT_GT(warm2.cache.hits, 0u);
}

} // namespace
} // namespace compaqt::runtime
