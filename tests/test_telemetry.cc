/**
 * @file
 * Tests for the telemetry plane: striped counters merged under
 * concurrency, log-bucketed histogram percentile accuracy against
 * the exact (sorting) common::percentile, trace ring-buffer
 * overwrite semantics, the disabled-cost contract (nothing recorded,
 * nothing dropped), strict-JSON round-trips of writeChromeTrace()
 * and Registry::writeJson(), and the observation-only contract:
 * executeBatch / executeBatchCompiled results are bit-identical with
 * tracing enabled and disabled at any worker count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "circuits/scheduler.hh"
#include "common/stats.hh"
#include "core/pipeline.hh"
#include "runtime/rack.hh"
#include "runtime/service.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"

namespace compaqt::telemetry
{
namespace
{

// ------------------------------------------ strict JSON mini-parser

/**
 * Recursive-descent strict JSON parser (RFC 8259): no trailing
 * commas, no unquoted keys, no comments, no raw control characters
 * in strings, exactly one top-level value. Numbers are parsed but
 * only validated; the tests navigate objects/arrays/strings.
 */
struct JsonValue
{
    using Object = std::map<std::string, JsonValue>;
    using Array = std::vector<JsonValue>;
    std::variant<std::nullptr_t, bool, double, std::string, Array,
                 Object>
        v;

    bool isObject() const { return std::holds_alternative<Object>(v); }
    bool isArray() const { return std::holds_alternative<Array>(v); }
    const Object &object() const { return std::get<Object>(v); }
    const Array &array() const { return std::get<Array>(v); }
    const std::string &str() const
    {
        return std::get<std::string>(v);
    }
    double num() const { return std::get<double>(v); }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    std::optional<JsonValue>
    parse()
    {
        skipWs();
        auto v = parseValue();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != s_.size()) // trailing garbage
            return std::nullopt;
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::string w(word);
        if (s_.compare(pos_, w.size(), w) != 0)
            return false;
        pos_ += w.size();
        return true;
    }

    std::optional<JsonValue>
    parseValue()
    {
        if (pos_ >= s_.size())
            return std::nullopt;
        switch (s_[pos_]) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            auto str = parseString();
            if (!str)
                return std::nullopt;
            return JsonValue{std::move(*str)};
          }
          case 't':
            return literal("true")
                       ? std::optional<JsonValue>(JsonValue{true})
                       : std::nullopt;
          case 'f':
            return literal("false")
                       ? std::optional<JsonValue>(JsonValue{false})
                       : std::nullopt;
          case 'n':
            return literal("null")
                       ? std::optional<JsonValue>(JsonValue{nullptr})
                       : std::nullopt;
          default: return parseNumber();
        }
    }

    std::optional<JsonValue>
    parseObject()
    {
        if (!consume('{'))
            return std::nullopt;
        JsonValue::Object obj;
        skipWs();
        if (consume('}'))
            return JsonValue{std::move(obj)};
        for (;;) {
            skipWs();
            auto key = parseString();
            if (!key)
                return std::nullopt;
            skipWs();
            if (!consume(':'))
                return std::nullopt;
            skipWs();
            auto val = parseValue();
            if (!val)
                return std::nullopt;
            obj.emplace(std::move(*key), std::move(*val));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return JsonValue{std::move(obj)};
            return std::nullopt;
        }
    }

    std::optional<JsonValue>
    parseArray()
    {
        if (!consume('['))
            return std::nullopt;
        JsonValue::Array arr;
        skipWs();
        if (consume(']'))
            return JsonValue{std::move(arr)};
        for (;;) {
            skipWs();
            auto val = parseValue();
            if (!val)
                return std::nullopt;
            arr.push_back(std::move(*val));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return JsonValue{std::move(arr)};
            return std::nullopt;
        }
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (static_cast<unsigned char>(c) < 0x20)
                return std::nullopt; // raw control char
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= s_.size())
                return std::nullopt;
            const char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    return std::nullopt;
                for (int k = 0; k < 4; ++k)
                    if (!std::isxdigit(static_cast<unsigned char>(
                            s_[pos_ + static_cast<std::size_t>(k)])))
                        return std::nullopt;
                pos_ += 4;
                out += '?'; // decoded value irrelevant to the tests
                break;
              }
              default: return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue>
    parseNumber()
    {
        const std::size_t start = pos_;
        consume('-');
        if (consume('0')) {
            // A leading zero must not be followed by digits.
            if (pos_ < s_.size() &&
                std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return std::nullopt;
        } else {
            if (pos_ >= s_.size() ||
                !std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return std::nullopt;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        if (consume('.')) {
            if (pos_ >= s_.size() ||
                !std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return std::nullopt;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (pos_ >= s_.size() ||
                !std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return std::nullopt;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        return JsonValue{std::stod(s_.substr(start, pos_ - start))};
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// -------------------------------------------------------- counters

TEST(Counter, MergesConcurrentAddsExactly)
{
    Counter c;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kAdds = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kAdds; ++i)
                c.add();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kAdds);
}

TEST(Counter, WeightedAddsSum)
{
    Counter c;
    c.add(3);
    c.add(0);
    c.add(39);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(2.5);
    g.set(-1.0);
    EXPECT_EQ(g.value(), -1.0);
}

// ------------------------------------------------------ histograms

TEST(LatencyHistogram, BucketIndexIsMonotonicAndRepresentativeTight)
{
    std::size_t prev = 0;
    for (std::uint64_t ns = 0; ns < 100000; ns += 7) {
        const std::size_t b = LatencyHistogram::bucketFor(ns);
        EXPECT_GE(b, prev);
        prev = b;
        const std::uint64_t rep =
            LatencyHistogram::representativeNs(b);
        // A bucket's representative is within half a sub-bucket
        // width (1/16 of the value) of every value it holds.
        const double rel =
            ns == 0 ? 0.0
                    : std::abs(static_cast<double>(rep) -
                               static_cast<double>(ns)) /
                          static_cast<double>(ns);
        EXPECT_LE(rel, 0.0625) << "ns=" << ns << " bucket=" << b;
    }
}

TEST(LatencyHistogram, PercentilesTrackExactSortWithin7Percent)
{
    LatencyHistogram h;
    std::vector<double> exact;
    std::mt19937_64 rng(7);
    // Log-uniform nanosecond latencies over six decades — the shape
    // a mixed cache-hit / full-decode workload produces.
    std::uniform_real_distribution<double> exp_dist(1.0, 7.0);
    for (int i = 0; i < 20000; ++i) {
        const auto ns = static_cast<std::uint64_t>(
            std::pow(10.0, exp_dist(rng)));
        h.recordNanos(ns);
        exact.push_back(static_cast<double>(ns));
    }
    const HistogramSnapshot snap = h.snapshot();
    ASSERT_EQ(snap.count, exact.size());
    for (const double q : {50.0, 90.0, 95.0, 99.0, 99.9}) {
        const double want = percentile(exact, q);
        const auto got = static_cast<double>(snap.percentileNs(q));
        EXPECT_NEAR(got, want, 0.07 * want) << "q=" << q;
    }
    // min/max are tracked exactly, not bucketed.
    const auto [min_it, max_it] =
        std::minmax_element(exact.begin(), exact.end());
    EXPECT_EQ(static_cast<double>(snap.minNs), *min_it);
    EXPECT_EQ(static_cast<double>(snap.maxNs), *max_it);
}

TEST(LatencyHistogram, PercentilesAreOrderedAndClampedToExtremes)
{
    LatencyHistogram h;
    h.recordNanos(100);
    h.recordNanos(200);
    h.recordNanos(300);
    const Percentiles p = h.snapshot().toPercentiles();
    EXPECT_EQ(p.count, 3u);
    EXPECT_LE(p.min, p.p50);
    EXPECT_LE(p.p50, p.p95);
    EXPECT_LE(p.p95, p.p99);
    EXPECT_LE(p.p99, p.p999);
    EXPECT_LE(p.p999, p.max);
    EXPECT_DOUBLE_EQ(p.min, 100e-9);
    EXPECT_DOUBLE_EQ(p.max, 300e-9);
}

TEST(LatencyHistogram, EmptySnapshotIsAllZero)
{
    LatencyHistogram h;
    const Percentiles p = h.snapshot().toPercentiles();
    EXPECT_EQ(p.count, 0u);
    EXPECT_EQ(p.p50, 0.0);
    EXPECT_EQ(p.min, 0.0);
    EXPECT_EQ(p.max, 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand)
{
    LatencyHistogram h;
    constexpr int kThreads = 8;
    constexpr int kRecords = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kRecords; ++i)
                h.recordNanos(
                    static_cast<std::uint64_t>(t * 1000 + i));
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(h.snapshot().count,
              static_cast<std::uint64_t>(kThreads) * kRecords);
}

// -------------------------------------------------------- registry

TEST(Registry, SameNameReturnsSameMetric)
{
    Registry reg;
    Counter &a = reg.counter("reg.test.counter");
    Counter &b = reg.counter("reg.test.counter");
    EXPECT_EQ(&a, &b);
    a.add(5);
    EXPECT_EQ(b.value(), 5u);
}

TEST(Registry, WriteJsonIsStrictJsonWithHistogramFields)
{
    Registry reg;
    reg.counter("jobs \"weird\" name\n").add(3);
    reg.gauge("depth").set(4.5);
    auto &h = reg.histogram("lat");
    h.recordNanos(1000);
    h.recordNanos(2000);

    std::ostringstream ss;
    reg.writeJson(ss);
    auto parsed = JsonParser(ss.str()).parse();
    ASSERT_TRUE(parsed.has_value()) << ss.str();
    ASSERT_TRUE(parsed->isObject());
    const auto &top = parsed->object();
    ASSERT_TRUE(top.count("counters"));
    ASSERT_TRUE(top.count("gauges"));
    ASSERT_TRUE(top.count("histograms"));
    const auto &hists = top.at("histograms").object();
    ASSERT_TRUE(hists.count("lat"));
    const auto &lat = hists.at("lat").object();
    for (const char *field :
         {"count", "mean_ns", "min_ns", "max_ns", "p50_ns", "p95_ns",
          "p99_ns", "p999_ns"})
        EXPECT_TRUE(lat.count(field)) << field;
    EXPECT_EQ(lat.at("count").num(), 2.0);
}

// ----------------------------------------------------------- trace

TEST(Trace, DisabledRecordsNothing)
{
    Trace trace;
    ASSERT_FALSE(trace.enabled());
    trace.instant("cat", "nothing");
    {
        SpanScope span(trace, "cat", "also-nothing");
    }
    EXPECT_EQ(trace.bufferedEvents(), 0u);
    EXPECT_EQ(trace.droppedEvents(), 0u);
}

TEST(Trace, RingOverwritesOldestAndCountsDrops)
{
    Trace trace(TraceConfig{.eventsPerThread = 4});
    trace.setEnabled(true);
    for (std::uint64_t i = 0; i < 10; ++i)
        trace.instant("test", "tick", "i", i);
    EXPECT_EQ(trace.bufferedEvents(), 4u);
    EXPECT_EQ(trace.droppedEvents(), 6u);
    // The survivors are the most recent four, oldest-first.
    const auto events = trace.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(events[k].arg0, 6 + k);
    trace.clear();
    EXPECT_EQ(trace.bufferedEvents(), 0u);
    EXPECT_EQ(trace.droppedEvents(), 0u);
}

TEST(Trace, SpanMeasuresDurationAndCarriesArgs)
{
    Trace trace;
    trace.setEnabled(true);
    {
        SpanScope span(trace, "test", "work", "shard", 3);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto events = trace.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, EventKind::Complete);
    EXPECT_STREQ(events[0].name, "work");
    EXPECT_STREQ(events[0].cat, "test");
    EXPECT_EQ(events[0].arg0, 3u);
    EXPECT_GE(events[0].durNs, 1000000u);
}

TEST(Trace, ConcurrentRecordingAndExportIsConsistent)
{
    Trace trace(TraceConfig{.eventsPerThread = 1u << 12});
    trace.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr std::uint64_t kEvents = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&trace] {
            for (std::uint64_t i = 0; i < kEvents; ++i)
                trace.instant("mt", "tick", "i", i);
        });
    // Export concurrently with the writers: must not crash or tear
    // (TSan-checked in CI).
    for (int i = 0; i < 20; ++i)
        (void)trace.snapshot();
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(trace.bufferedEvents() + trace.droppedEvents(),
              kThreads * kEvents);
    // Snapshot is sorted by start time.
    const auto events = trace.snapshot();
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].startNs, events[i - 1].startNs);
}

TEST(Trace, ChromeTraceExportIsStrictJson)
{
    Trace trace;
    trace.setEnabled(true);
    trace.instant("cache", "cache.hit", "window", 7, "channel", 1);
    {
        SpanScope span(trace, "batch", "service.batch", "circuits",
                       2);
    }
    std::ostringstream ss;
    trace.writeChromeTrace(ss);

    auto parsed = JsonParser(ss.str()).parse();
    ASSERT_TRUE(parsed.has_value()) << ss.str();
    ASSERT_TRUE(parsed->isObject());
    const auto &top = parsed->object();
    ASSERT_TRUE(top.count("traceEvents"));
    ASSERT_TRUE(top.count("displayTimeUnit"));
    const auto &events = top.at("traceEvents").array();
    ASSERT_EQ(events.size(), 2u);
    bool saw_instant = false, saw_span = false;
    for (const auto &ev : events) {
        ASSERT_TRUE(ev.isObject());
        const auto &e = ev.object();
        for (const char *field :
             {"name", "cat", "ph", "ts", "pid", "tid"})
            ASSERT_TRUE(e.count(field)) << field;
        const std::string &ph = e.at("ph").str();
        if (ph == "X") {
            saw_span = true;
            EXPECT_TRUE(e.count("dur"));
            EXPECT_EQ(e.at("name").str(), "service.batch");
            EXPECT_EQ(e.at("args").object().at("circuits").num(),
                      2.0);
        } else {
            saw_instant = true;
            EXPECT_EQ(ph, "i");
            EXPECT_EQ(e.at("name").str(), "cache.hit");
            const auto &args = e.at("args").object();
            EXPECT_EQ(args.at("window").num(), 7.0);
            EXPECT_EQ(args.at("channel").num(), 1.0);
        }
    }
    EXPECT_TRUE(saw_instant);
    EXPECT_TRUE(saw_span);
}

TEST(Trace, FileExportWritesParseableFileAtomically)
{
    Trace trace;
    trace.setEnabled(true);
    trace.instant("test", "tick");
    const std::string path = "trace_test_telemetry.json";
    ASSERT_TRUE(trace.writeChromeTrace(path));
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::ostringstream ss;
    ss << is.rdbuf();
    EXPECT_TRUE(JsonParser(ss.str()).parse().has_value());
    std::remove(path.c_str());
}

// ----------------------------------- observation-only (bit-identity)

/** Bogota workload mirroring the server tests. */
struct RackFixture
{
    waveform::DeviceModel dev = waveform::DeviceModel::ibm("bogota");
    core::CompressedLibrary clib;
    std::vector<circuits::Schedule> batch;

    RackFixture()
    {
        const auto lib = waveform::PulseLibrary::build(dev);
        clib = core::CompressionPipeline::with("int-dct")
                   .window(16)
                   .mseTarget(1e-5)
                   .build()
                   .compressLibrary(lib);
        circuits::Circuit a(5);
        for (int q = 0; q < 5; ++q)
            a.x(q);
        a.measureAll();
        circuits::Circuit b(5);
        for (const auto &[x, y] : dev.coupling())
            b.cx(x, y);
        batch = {circuits::schedule(a, {}),
                 circuits::schedule(b, {}),
                 circuits::schedule(a, {})};
    }

    runtime::RackConfig
    rackConfig() const
    {
        runtime::RackConfig rc;
        rc.numShards = 2;
        rc.controller.compressed = true;
        rc.controller.windowSize = 16;
        rc.controller.memoryWidth = clib.worstCaseWindowWords();
        rc.cacheWindows = 4096;
        return rc;
    }
};

/** Every field of a job rollup that the determinism contract covers
 *  (everything but batch-scoped cache counters and wall clock). */
void
expectIdentical(const runtime::RackStats &a,
                const runtime::RackStats &b)
{
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (std::size_t s = 0; s < a.shards.size(); ++s) {
        const auto &x = a.shards[s];
        const auto &y = b.shards[s];
        EXPECT_EQ(x.demand.totalSamples, y.demand.totalSamples) << s;
        EXPECT_EQ(x.demand.totalWordsRead, y.demand.totalWordsRead)
            << s;
        EXPECT_EQ(x.demand.peakBanks, y.demand.peakBanks) << s;
        EXPECT_EQ(x.gatesPlayed, y.gatesPlayed) << s;
        EXPECT_EQ(x.windowsDecoded, y.windowsDecoded) << s;
        EXPECT_EQ(x.samplesDecoded, y.samplesDecoded) << s;
        EXPECT_EQ(x.samplesBypassed, y.samplesBypassed) << s;
        EXPECT_EQ(x.prefetchesIssued, y.prefetchesIssued) << s;
    }
    EXPECT_EQ(a.totalGates, b.totalGates);
    EXPECT_EQ(a.totalWindows, b.totalWindows);
    EXPECT_EQ(a.totalSamples, b.totalSamples);
    EXPECT_EQ(a.totalBypassSamples, b.totalBypassSamples);
    EXPECT_EQ(a.missingGates, b.missingGates);
    EXPECT_EQ(a.unownedEvents, b.unownedEvents);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
}

/** RAII guard so a failing assertion cannot leave the global trace
 *  enabled for later tests. */
struct TraceEnableGuard
{
    explicit TraceEnableGuard(bool on)
    {
        Trace::global().setEnabled(on);
    }
    ~TraceEnableGuard()
    {
        Trace::global().setEnabled(false);
        Trace::global().clear();
    }
};

TEST(Telemetry, ExecuteBatchIdenticalWithTracingOnAndOff)
{
    const RackFixture fx;
    for (const int workers : {1, 4}) {
        const runtime::Rack rack(fx.dev, fx.clib, fx.rackConfig());
        runtime::RuntimeService svc(rack, {.workers = workers});
        const auto off = svc.executeBatchPerJob(fx.batch);

        const runtime::Rack rack2(fx.dev, fx.clib, fx.rackConfig());
        runtime::RuntimeService svc2(rack2, {.workers = workers});
        TraceEnableGuard guard(true);
        const auto on = svc2.executeBatchPerJob(fx.batch);

        ASSERT_EQ(off.jobs.size(), on.jobs.size());
        expectIdentical(off.total, on.total);
        for (std::size_t j = 0; j < off.jobs.size(); ++j)
            expectIdentical(off.jobs[j], on.jobs[j]);
        // Tracing actually recorded something while enabled.
        EXPECT_GT(Trace::global().bufferedEvents() +
                      Trace::global().droppedEvents(),
                  0u);
    }
}

TEST(Telemetry, ExecuteBatchCompiledIdenticalWithTracingOnAndOff)
{
    const RackFixture fx;
    const isa::CompilerConfig ccfg;
    for (const int workers : {1, 4}) {
        const runtime::Rack rack(fx.dev, fx.clib, fx.rackConfig());
        runtime::RuntimeService svc(rack, {.workers = workers});
        const auto off =
            svc.executeBatchCompiledPerJob(fx.batch, ccfg);

        const runtime::Rack rack2(fx.dev, fx.clib, fx.rackConfig());
        runtime::RuntimeService svc2(rack2, {.workers = workers});
        TraceEnableGuard guard(true);
        const auto on =
            svc2.executeBatchCompiledPerJob(fx.batch, ccfg);

        ASSERT_EQ(off.jobs.size(), on.jobs.size());
        expectIdentical(off.total, on.total);
        for (std::size_t j = 0; j < off.jobs.size(); ++j)
            expectIdentical(off.jobs[j], on.jobs[j]);
    }
}

TEST(Telemetry, DirectAndCompiledBackEndsStillAgreeWhileTraced)
{
    const RackFixture fx;
    TraceEnableGuard guard(true);
    const runtime::Rack rack(fx.dev, fx.clib, fx.rackConfig());
    runtime::RuntimeService svc(rack, {.workers = 2});
    const auto direct = svc.executeBatchPerJob(fx.batch);
    const runtime::Rack rack2(fx.dev, fx.clib, fx.rackConfig());
    runtime::RuntimeService svc2(rack2, {.workers = 2});
    const auto compiled =
        svc2.executeBatchCompiledPerJob(fx.batch, {});
    EXPECT_EQ(direct.total.totalGates, compiled.total.totalGates);
    EXPECT_EQ(direct.total.totalSamples,
              compiled.total.totalSamples);
    EXPECT_EQ(direct.total.totalWindows,
              compiled.total.totalWindows);
}

} // namespace
} // namespace compaqt::telemetry
