/**
 * @file
 * Unit tests for the power substrate: SRAM model monotonicity, engine
 * energy accounting, and the Fig 18/19 system rollups.
 */

#include <gtest/gtest.h>

#include "core/adaptive.hh"
#include "power/idct_power.hh"
#include "power/sram.hh"
#include "power/system.hh"
#include "waveform/shapes.hh"

namespace compaqt::power
{
namespace
{

TEST(Sram, EnergyGrowsWithCapacity)
{
    const SramModel small(2 * 1024.0);
    const SramModel big(5 * 1024.0 * 1024.0);
    EXPECT_LT(small.energyPerAccessJ(), big.energyPerAccessJ());
    EXPECT_LT(small.leakagePowerW(), big.leakagePowerW());
}

TEST(Sram, PowerScalesWithAccessRate)
{
    const SramModel m(18 * 1024.0);
    const double p1 = m.powerW(1e9);
    const double p2 = m.powerW(2e9);
    EXPECT_GT(p2, p1);
    EXPECT_NEAR(p2 - m.leakagePowerW(),
                2.0 * (p1 - m.leakagePowerW()), 1e-12);
}

TEST(Sram, CalibrationIsPicojouleScale)
{
    // 18 KB macro: energy/access in the ~1-2 pJ band at 40nm.
    const SramModel m(18 * 1024.0);
    EXPECT_GT(m.energyPerAccessJ(), 0.5e-12);
    EXPECT_LT(m.energyPerAccessJ(), 3e-12);
}

TEST(IdctPower, IntEngineCheaperThanMultiplier)
{
    const double e_int =
        idctEnergyPerWindowJ(uarch::EngineKind::IntDctW, 8);
    const double e_mul =
        idctEnergyPerWindowJ(uarch::EngineKind::DctW, 8);
    EXPECT_LT(e_int, e_mul);
}

TEST(IdctPower, EnergyGrowsWithWindowSize)
{
    const double e8 =
        idctEnergyPerWindowJ(uarch::EngineKind::IntDctW, 8);
    const double e16 =
        idctEnergyPerWindowJ(uarch::EngineKind::IntDctW, 16);
    const double e32 =
        idctEnergyPerWindowJ(uarch::EngineKind::IntDctW, 32);
    EXPECT_LT(e8, e16);
    EXPECT_LT(e16, e32);
}

TEST(System, UncompressedBreakdownMatchesFig18)
{
    const auto b = uncompressedPower();
    EXPECT_DOUBLE_EQ(b.dacW, 2e-3);
    // Memory dominates: ~12-15 mW at 2 x 4.54 GS/s.
    EXPECT_GT(b.memoryW, 10e-3);
    EXPECT_LT(b.memoryW, 16e-3);
    EXPECT_DOUBLE_EQ(b.idctW, 0.0);
}

TEST(System, CompressionCutsTotalPowerPast2p5x)
{
    // Fig 18's headline: > 2.5x total reduction at WS=8, more at 16.
    const auto base = uncompressedPower();
    const auto ws8 = compressedPower(8, 2.3);
    const auto ws16 = compressedPower(16, 2.5);
    EXPECT_GT(base.total() / ws8.total(), 2.0);
    EXPECT_GT(base.total() / ws16.total(), 2.5);
    EXPECT_LT(ws16.total(), ws8.total());
    // The IDCT overhead must not swamp the memory savings.
    EXPECT_LT(ws16.idctW, base.memoryW - ws16.memoryW);
}

TEST(System, MemoryPowerReductionTracksAccessRatio)
{
    const auto base = uncompressedPower();
    const auto comp = compressedPower(16, 2.5);
    // Accesses drop by 16/2.5 = 6.4x; leakage holds a small floor.
    const double ratio = base.memoryW / comp.memoryW;
    EXPECT_GT(ratio, 4.0);
    EXPECT_LT(ratio, 7.0);
}

TEST(System, AdaptiveSavesFurtherPower)
{
    // Fig 19: the flat-top bypass yields ~4x total vs uncompressed.
    const auto base = uncompressedPower();
    const auto plain = compressedPower(16, 2.5);
    const auto adaptive = adaptivePower(16, 2.5, 0.3);
    EXPECT_LT(adaptive.total(), plain.total());
    EXPECT_GT(base.total() / adaptive.total(), 3.0);
    EXPECT_DOUBLE_EQ(adaptive.dacW, plain.dacW);
}

TEST(System, IdctFractionFromAdaptiveChannel)
{
    core::CompressorConfig cfg{"int-dct", 16, 1e-3};
    const core::AdaptiveCompressor comp(cfg);
    const auto wf = waveform::gaussianSquare(1360, 200, 0.12, 0.1);
    const auto ac = comp.compress(wf);
    const double f = idctFraction(ac.i);
    EXPECT_GT(f, 0.05);
    EXPECT_LT(f, 0.6); // most of the flat-top bypasses the IDCT
}

TEST(System, IdctFractionFromExecutionCounters)
{
    // The counter overload lets measured ExecutionStats drive the
    // power model: fraction = 1 - bypass/total.
    EXPECT_DOUBLE_EQ(idctFraction(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(idctFraction(0, 100), 1.0);
    EXPECT_DOUBLE_EQ(idctFraction(75, 100), 0.25);
    EXPECT_DEATH(idctFraction(101, 100), "bypass");
}

TEST(System, IdctFractionOfPlainChannelIsOne)
{
    core::CompressorConfig cfg{"int-dct", 16, 1e-3};
    const core::Compressor comp(cfg);
    const auto cw = comp.compress(waveform::drag(144, 36.0, 0.2, 1.2));
    EXPECT_DOUBLE_EQ(idctFraction(cw.i), 1.0);
}

TEST(System, AdaptiveFractionBounds)
{
    EXPECT_DEATH(adaptivePower(16, 2.5, 1.5), "fraction");
}

} // namespace
} // namespace compaqt::power
