/**
 * @file
 * Tests for the instruction-stream backend: ISA encode/decode
 * round-trips and malformed-stream rejection, program word accounting
 * and serialization, the cache-aware list-scheduling compiler (WAIT
 * gaps, gate-table dedupe, prefetch lead/budget discipline,
 * instruction-memory bounds), and the headline acceptance contract —
 * executeBatchCompiled produces bit-identical deterministic RackStats
 * to the direct path on the full test device suite at 1 and N
 * workers, while prefetching raises the cold cache hit rate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include <string>

#include "circuits/scheduler.hh"
#include "circuits/surface_code.hh"
#include "core/pipeline.hh"
#include "dsp/simd.hh"
#include "isa/compiler.hh"
#include "isa/interpreter.hh"
#include "isa/isa.hh"
#include "runtime/rack.hh"
#include "runtime/service.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"

namespace compaqt::isa
{
namespace
{

core::CompressedLibrary
buildCompressed(const waveform::PulseLibrary &lib)
{
    return core::CompressionPipeline::with("int-dct")
        .window(16)
        .mseTarget(1e-5)
        .build()
        .compressLibrary(lib);
}

uarch::ControllerConfig
controllerConfig(const core::CompressedLibrary &clib)
{
    uarch::ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = clib.worstCaseWindowWords();
    return cc;
}

runtime::RackConfig
rackConfig(const core::CompressedLibrary &clib, int shards,
           std::size_t cache_windows)
{
    runtime::RackConfig rc;
    rc.numShards = shards;
    rc.policy = runtime::ShardPolicy::LocalityAware;
    rc.controller = controllerConfig(clib);
    rc.cacheWindows = cache_windows;
    return rc;
}

/** A coupling-walking workload (CX over every edge, X on every
 *  qubit, full measurement) — every library gate gets played. */
circuits::Schedule
deviceWorkload(const waveform::DeviceModel &dev)
{
    circuits::Circuit c(static_cast<std::size_t>(dev.numQubits()));
    for (const auto &[a, b] : dev.coupling())
        c.cx(a, b);
    for (int q = 0; q < static_cast<int>(dev.numQubits()); ++q)
        c.x(q);
    c.measureAll();
    return circuits::schedule(c, {});
}

// ------------------------------------------------- instruction encoding

TEST(IsaEncoding, RoundTripsEveryOpcode)
{
    const Instruction cases[] = {
        Instruction::play(7, 1, 3, 42),
        Instruction::play(0, 0, 0, 0xFFFF),
        Instruction::wait(0xFFFFFFFFu),
        Instruction::wait(1),
        Instruction::prefetch(65535, 1, 0xDEADBEEFu),
        Instruction::barrier(),
        Instruction::halt(),
    };
    for (const auto &in : cases) {
        const auto enc = encode(in);
        const auto out = decode(enc.word0, enc.word1);
        EXPECT_EQ(out, in) << opcodeName(in.op);
    }
    const auto p = Instruction::play(7, 1, 3, 42);
    EXPECT_EQ(p.playFirst(), 3u);
    EXPECT_EQ(p.playCount(), 42u);
}

TEST(IsaEncoding, PrefetchTierBitRoundTrips)
{
    // The tier target rides in bit 31 of the operand word; the
    // window index keeps the low 31 bits.
    const auto slow = Instruction::prefetch(12, 1, 5, 1);
    EXPECT_EQ(slow.prefetchWindow(), 5u);
    EXPECT_EQ(slow.prefetchTier(), 1);
    const auto enc = encode(slow);
    EXPECT_EQ(decode(enc.word0, enc.word1), slow);

    // The largest encodable index survives with either target.
    const auto wide = Instruction::prefetch(12, 0, 0x7FFFFFFFu, 1);
    EXPECT_EQ(wide.prefetchWindow(), 0x7FFFFFFFu);
    EXPECT_EQ(wide.prefetchTier(), 1);

    // A pre-hierarchy encoding (tier bit never set) decodes as a
    // fast-tier hint: old programs keep their exact meaning.
    const auto legacy = Instruction::prefetch(12, 1, 42);
    EXPECT_EQ(legacy.prefetchWindow(), 42u);
    EXPECT_EQ(legacy.prefetchTier(), 0);
}

TEST(IsaEncoding, RejectsMalformedWords)
{
    // Unknown opcode.
    EXPECT_THROW(decode(99u << 24, 0), std::invalid_argument);
    // WAIT with a nonzero gate-ref field.
    EXPECT_THROW(decode((1u << 24) | 5u, 10), std::invalid_argument);
    // BARRIER/HALT with a nonzero operand word.
    EXPECT_THROW(decode(3u << 24, 7), std::invalid_argument);
    EXPECT_THROW(decode(4u << 24, 1), std::invalid_argument);
    // PLAY on a channel other than I/Q.
    EXPECT_THROW(decode((0u << 24) | (2u << 16), 0),
                 std::invalid_argument);
    // The valid shape decodes fine.
    EXPECT_NO_THROW(decode((1u << 24), 10));
}

TEST(IsaProgram, GateTableDedupesInterning)
{
    InstructionProgram prog;
    const waveform::GateId x0{waveform::GateType::X, 0, -1};
    const waveform::GateId x1{waveform::GateType::X, 1, -1};
    EXPECT_EQ(prog.internGate(x0), 0);
    EXPECT_EQ(prog.internGate(x1), 1);
    EXPECT_EQ(prog.internGate(x0), 0); // deduped
    ASSERT_EQ(prog.gateTable().size(), 2u);
    EXPECT_EQ(prog.gate(0), x0);
    EXPECT_EQ(prog.gate(1), x1);
}

TEST(IsaProgram, MemoryWordAccountingIsExact)
{
    InstructionProgram prog;
    const auto ref =
        prog.internGate({waveform::GateType::CX, 1, 2});
    prog.emit(Instruction::prefetch(ref, 0, 0));
    prog.emit(Instruction::play(ref, 0, 0, 4));
    prog.emit(Instruction::halt());
    // 4 header (sizes + library-version stamp) + 1 gate-table +
    // 3 instructions x 2 words.
    EXPECT_EQ(prog.numInstructions(), 3u);
    EXPECT_EQ(prog.memoryWords(), 4u + 1u + 6u);

    const auto words = prog.toWords();
    ASSERT_EQ(words.size(), prog.memoryWords());
    auto back = InstructionProgram::fromWords(words);
    ASSERT_EQ(back.numInstructions(), prog.numInstructions());
    ASSERT_EQ(back.gateTable(), prog.gateTable());
    for (std::size_t i = 0; i < prog.numInstructions(); ++i)
        EXPECT_EQ(back.at(i), prog.at(i)) << "instruction " << i;
    // The reloaded program re-interns into the same table slot.
    EXPECT_EQ(back.internGate({waveform::GateType::CX, 1, 2}), ref);
}

TEST(IsaProgram, FromWordsRejectsCorruptStreams)
{
    InstructionProgram prog;
    prog.emit(Instruction::wait(3));
    prog.emit(Instruction::halt());
    const auto words = prog.toWords();

    // Truncated streams.
    EXPECT_THROW(InstructionProgram::fromWords(
                     std::span(words.data(), words.size() - 1)),
                 std::invalid_argument);
    EXPECT_THROW(InstructionProgram::fromWords(
                     std::span(words.data(), std::size_t{1})),
                 std::invalid_argument);

    // A PLAY referencing a gate the table does not hold.
    const auto bad = encode(Instruction::play(5, 0, 0, 1));
    const std::vector<std::uint32_t> stream = {0, 2, bad.word0,
                                               bad.word1};
    EXPECT_THROW(InstructionProgram::fromWords(stream),
                 std::invalid_argument);
}

// ----------------------------------------------------------- compiler

/** Small bogota fixture shared by the compiler tests. */
class IsaCompilerTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        dev_ = new waveform::DeviceModel(
            waveform::DeviceModel::ibm("bogota"));
        lib_ = new waveform::PulseLibrary(
            waveform::PulseLibrary::build(*dev_));
        clib_ = new core::CompressedLibrary(buildCompressed(*lib_));
    }

    static void
    TearDownTestSuite()
    {
        delete clib_;
        delete lib_;
        delete dev_;
        clib_ = nullptr;
        lib_ = nullptr;
        dev_ = nullptr;
    }

    runtime::Rack
    makeRack(int shards, std::size_t cache_windows) const
    {
        return runtime::Rack(
            *dev_, *clib_, rackConfig(*clib_, shards, cache_windows));
    }

    static waveform::DeviceModel *dev_;
    static waveform::PulseLibrary *lib_;
    static core::CompressedLibrary *clib_;
};

waveform::DeviceModel *IsaCompilerTest::dev_ = nullptr;
waveform::PulseLibrary *IsaCompilerTest::lib_ = nullptr;
core::CompressedLibrary *IsaCompilerTest::clib_ = nullptr;

TEST_F(IsaCompilerTest, WaitCyclesBridgeScheduleGaps)
{
    // Two sequential X pulses on one qubit: the lowered stream is
    // PLAY pair, WAIT for the first pulse's cycles, PLAY pair.
    const auto rack = makeRack(1, 4096);
    circuits::Circuit c(5);
    c.x(0);
    c.x(0);
    const auto sched = circuits::schedule(c, {});
    const Compiler comp(rack, {.emitPrefetch = false});
    ProgramStats st;
    const auto prog = comp.compileShard(sched, &st);

    ASSERT_EQ(prog.numInstructions(), 7u);
    EXPECT_EQ(prog.at(0).op, Opcode::Play);
    EXPECT_EQ(prog.at(1).op, Opcode::Play);
    EXPECT_EQ(prog.at(2).op, Opcode::Wait);
    EXPECT_EQ(prog.at(3).op, Opcode::Play);
    EXPECT_EQ(prog.at(4).op, Opcode::Play);
    EXPECT_EQ(prog.at(5).op, Opcode::Barrier);
    EXPECT_EQ(prog.at(6).op, Opcode::Halt);

    const double hz = rack.config().controller.fabricClockHz;
    const auto gap = static_cast<std::uint32_t>(
        std::llround(sched.events[1].start * hz));
    EXPECT_EQ(prog.at(2).arg, gap);
    EXPECT_GT(gap, 0u);

    // Both X(0) plays fetch one gate-table entry: max dedupe.
    EXPECT_EQ(prog.gateTable().size(), 1u);
    EXPECT_EQ(st.playedEvents, 2u);
    EXPECT_EQ(st.uniqueGates, 1u);
    EXPECT_EQ(st.dedupedFetches, 1u);
    EXPECT_EQ(st.waitInstructions, 1u);
    EXPECT_EQ(st.playInstructions, 4u);
    EXPECT_EQ(st.programCycles,
              static_cast<std::uint64_t>(gap) +
                  std::max<std::uint64_t>(
                      1, static_cast<std::uint64_t>(std::llround(
                             sched.events[1].duration * hz))));
}

TEST_F(IsaCompilerTest, ZeroGateScheduleCompilesToBarrierHalt)
{
    const auto rack = makeRack(1, 4096);
    const Compiler comp(rack);
    ProgramStats st;
    const auto prog = comp.compileShard(circuits::Schedule{}, &st);
    ASSERT_EQ(prog.numInstructions(), 2u);
    EXPECT_EQ(prog.at(0).op, Opcode::Barrier);
    EXPECT_EQ(prog.at(1).op, Opcode::Halt);
    EXPECT_EQ(prog.memoryWords(), 8u);
    EXPECT_EQ(st.playedEvents, 0u);
    EXPECT_EQ(st.programCycles, 0u);
    EXPECT_TRUE(st.fitsMemoryBound);
}

TEST_F(IsaCompilerTest, MaxDedupeCollapsesGateTableToOneEntry)
{
    // The all-gates-same-(gate, channel) worst case: N plays of X(0)
    // intern one table entry; dedupedFetches counts the other N-1.
    const auto rack = makeRack(1, 1 << 16);
    circuits::Circuit c(5);
    for (int i = 0; i < 40; ++i)
        c.x(0);
    const Compiler comp(rack);
    ProgramStats st;
    const auto prog =
        comp.compileShard(circuits::schedule(c, {}), &st);
    EXPECT_EQ(prog.gateTable().size(), 1u);
    EXPECT_EQ(st.playedEvents, 40u);
    EXPECT_EQ(st.uniqueGates, 1u);
    EXPECT_EQ(st.dedupedFetches, 39u);
}

TEST_F(IsaCompilerTest, PrefetchRequiresLeadSlack)
{
    const auto rack = makeRack(1, 4096);
    circuits::Circuit c(5);
    c.x(0);
    c.sx(0); // first use with a gap ahead of it
    c.x(0);
    const auto sched = circuits::schedule(c, {});

    // With an achievable lead, the SX first-use windows are hoisted
    // into the gap left by the X pulse.
    ProgramStats hoisted;
    Compiler(rack, {.prefetchLeadCycles = 1})
        .compileShard(sched, &hoisted);
    EXPECT_GT(hoisted.prefetchInstructions, 0u);

    // With an impossible lead, every candidate is skipped for slack.
    ProgramStats skipped;
    Compiler(rack, {.prefetchLeadCycles = 0xFFFFFFFFu})
        .compileShard(sched, &skipped);
    EXPECT_EQ(skipped.prefetchInstructions, 0u);
    EXPECT_GT(skipped.prefetchSkippedNoSlack, 0u);

    // Prefetch never fires when the master switch is off or the
    // cache is disabled.
    ProgramStats off;
    Compiler(rack, {.emitPrefetch = false}).compileShard(sched, &off);
    EXPECT_EQ(off.prefetchInstructions, 0u);
    const auto uncached = makeRack(1, 0);
    ProgramStats nocache;
    Compiler(uncached, CompilerConfig{}).compileShard(sched, &nocache);
    EXPECT_EQ(nocache.prefetchInstructions, 0u);
}

TEST_F(IsaCompilerTest, PrefetchHintsTargetTiersByReuseDistance)
{
    // Two prefetchable first uses behind the gap a long measurement
    // pulse leaves: SX(0) replays almost immediately (short reuse
    // distance), SX(1) never replays (infinite reuse distance).
    circuits::Circuit c(2);
    c.measureAll();
    c.sx(0);
    c.sx(1);
    c.sx(0);
    const auto sched = circuits::schedule(c, {});

    // On a flat rack every hint targets tier 0: there is nowhere
    // else to stage a window.
    const auto flat = makeRack(1, 4096);
    ProgramStats fst;
    Compiler(flat, {.prefetchLeadCycles = 1})
        .compileShard(sched, &fst);
    EXPECT_GT(fst.prefetchInstructions, 0u);
    EXPECT_EQ(fst.prefetchTier0, fst.prefetchInstructions);
    EXPECT_EQ(fst.prefetchTier1, 0u);

    // On a tiered rack the lookahead splits them: near-reuse windows
    // go to the fast tier, single-use windows are staged in the slow
    // tier so they cannot wash the hot set out.
    runtime::RackConfig rc = rackConfig(*clib_, 1, 64);
    rc.tier1Windows = 4096;
    const runtime::Rack tiered(*dev_, *clib_, rc);
    ProgramStats tst;
    Compiler(tiered, {.prefetchLeadCycles = 1})
        .compileShard(sched, &tst);
    EXPECT_GT(tst.prefetchTier0, 0u);
    EXPECT_GT(tst.prefetchTier1, 0u);
    EXPECT_EQ(tst.prefetchTier0 + tst.prefetchTier1,
              tst.prefetchInstructions);

    // Shrinking the tier-0 reuse horizon below SX(0)'s replay
    // distance pushes even the near-reuse windows into the slow
    // tier; gates that never replay stay there at any horizon.
    ProgramStats narrow;
    Compiler(tiered,
             {.prefetchLeadCycles = 1, .tier0ReuseDistance = 1})
        .compileShard(sched, &narrow);
    EXPECT_GT(narrow.prefetchInstructions, 0u);
    EXPECT_EQ(narrow.prefetchTier0, 0u);
    EXPECT_EQ(narrow.prefetchTier1, narrow.prefetchInstructions);
}

TEST_F(IsaCompilerTest, InstructionMemoryBoundIsEnforced)
{
    const auto rack = makeRack(1, 4096);
    // A bound too small for even an empty program is rejected up
    // front.
    EXPECT_THROW(Compiler(rack, {.instructionMemoryWords = 4}),
                 std::invalid_argument);

    circuits::Circuit c(5);
    c.x(0);
    c.sx(0);
    c.x(0);
    const auto sched = circuits::schedule(c, {});

    // The mandatory stream of a real shard cannot fit 8 words.
    EXPECT_THROW(Compiler(rack, {.instructionMemoryWords = 8})
                     .compileShard(sched),
                 std::invalid_argument);

    // Exactly the mandatory footprint: compiles, but every prefetch
    // hint is dropped for budget, and the program fits its bound.
    ProgramStats bare;
    Compiler(rack, {.emitPrefetch = false})
        .compileShard(sched, &bare);
    ProgramStats squeezed;
    const auto prog =
        Compiler(rack, {.instructionMemoryWords = bare.memoryWords})
            .compileShard(sched, &squeezed);
    EXPECT_EQ(squeezed.prefetchInstructions, 0u);
    EXPECT_GT(squeezed.prefetchDroppedBudget, 0u);
    EXPECT_TRUE(squeezed.fitsMemoryBound);
    EXPECT_EQ(prog.memoryWords(), bare.memoryWords);
    EXPECT_EQ(squeezed.memoryBoundWords, bare.memoryWords);
}

TEST_F(IsaCompilerTest, CompileCoversEveryShardAndReportsUnowned)
{
    const auto rack = makeRack(2, 4096);
    // 8-qubit circuit on the 5-qubit rack: 3 events are unowned.
    circuits::Circuit c(8);
    for (int q = 0; q < 8; ++q)
        c.x(q);
    const Compiler comp(rack);
    const auto compiled = comp.compile(circuits::schedule(c, {}));
    ASSERT_EQ(compiled.programs.size(), 2u);
    ASSERT_EQ(compiled.stats.size(), 2u);
    EXPECT_EQ(compiled.unownedEvents, 3u);
    std::uint64_t played = 0;
    for (std::size_t s = 0; s < compiled.programs.size(); ++s) {
        const auto &prog = compiled.programs[s];
        ASSERT_GE(prog.numInstructions(), 2u);
        EXPECT_EQ(prog.at(prog.numInstructions() - 1).op,
                  Opcode::Halt);
        played += compiled.stats[s].playedEvents;
        EXPECT_TRUE(compiled.stats[s].fitsMemoryBound);
    }
    EXPECT_EQ(played, 5u);
}

// ------------------------------------------- compiled-vs-direct identity

/** The deterministic-field identity contract between the two back
 *  ends: everything except cache counters, wall-clock rates, and
 *  prefetchesIssued. */
void
expectIdenticalStats(const runtime::RackStats &a,
                     const runtime::RackStats &b, const char *tag)
{
    ASSERT_EQ(a.shards.size(), b.shards.size()) << tag;
    for (std::size_t s = 0; s < a.shards.size(); ++s) {
        const auto &x = a.shards[s];
        const auto &y = b.shards[s];
        EXPECT_EQ(x.demand.peakBanks, y.demand.peakBanks)
            << tag << " shard " << s;
        EXPECT_EQ(x.demand.peakChannels, y.demand.peakChannels)
            << tag << " shard " << s;
        EXPECT_EQ(x.demand.peakBandwidthBytesPerSec,
                  y.demand.peakBandwidthBytesPerSec)
            << tag << " shard " << s;
        EXPECT_EQ(x.demand.feasible, y.demand.feasible)
            << tag << " shard " << s;
        EXPECT_EQ(x.demand.totalSamples, y.demand.totalSamples)
            << tag << " shard " << s;
        EXPECT_EQ(x.demand.totalWordsRead, y.demand.totalWordsRead)
            << tag << " shard " << s;
        EXPECT_EQ(x.demand.missingGates, y.demand.missingGates)
            << tag << " shard " << s;
        EXPECT_EQ(x.demand.bypassSamples, y.demand.bypassSamples)
            << tag << " shard " << s;
        EXPECT_EQ(x.gatesPlayed, y.gatesPlayed)
            << tag << " shard " << s;
        EXPECT_EQ(x.windowsDecoded, y.windowsDecoded)
            << tag << " shard " << s;
        EXPECT_EQ(x.samplesDecoded, y.samplesDecoded)
            << tag << " shard " << s;
        EXPECT_EQ(x.samplesBypassed, y.samplesBypassed)
            << tag << " shard " << s;
    }
    EXPECT_EQ(a.fleetPeakBanks, b.fleetPeakBanks) << tag;
    EXPECT_EQ(a.fleetPeakChannels, b.fleetPeakChannels) << tag;
    EXPECT_EQ(a.fleetPeakBandwidthBytesPerSec,
              b.fleetPeakBandwidthBytesPerSec)
        << tag;
    EXPECT_EQ(a.feasible, b.feasible) << tag;
    EXPECT_EQ(a.totalGates, b.totalGates) << tag;
    EXPECT_EQ(a.totalWindows, b.totalWindows) << tag;
    EXPECT_EQ(a.totalSamples, b.totalSamples) << tag;
    EXPECT_EQ(a.totalBypassSamples, b.totalBypassSamples) << tag;
    EXPECT_EQ(a.missingGates, b.missingGates) << tag;
    EXPECT_EQ(a.unownedEvents, b.unownedEvents) << tag;
}

TEST(IsaExecution, CompiledMatchesDirectAcrossDeviceSuite)
{
    struct Case
    {
        const char *name;
        waveform::DeviceModel dev;
        circuits::Schedule sched;
        int shards;
    };
    const auto sc = circuits::surface17();
    const auto scDev = waveform::DeviceModel::synthetic(
        "surface17-device", sc.totalQubits(),
        sc.nativeCoupling().edges());
    const auto bogota = waveform::DeviceModel::ibm("bogota");
    const auto guadalupe = waveform::DeviceModel::ibm("guadalupe");
    const Case cases[] = {
        {"bogota", bogota, deviceWorkload(bogota), 2},
        {"guadalupe", guadalupe, deviceWorkload(guadalupe), 4},
        {"surface17", scDev, circuits::schedule(sc.circuit, {}), 3},
    };

    for (const auto &tc : cases) {
        const auto lib = waveform::PulseLibrary::build(tc.dev);
        const auto clib = buildCompressed(lib);
        const std::vector<circuits::Schedule> batch = {tc.sched,
                                                       tc.sched};

        const runtime::Rack direct(
            tc.dev, clib, rackConfig(clib, tc.shards, 4096));
        runtime::RuntimeService dsvc(direct, {.workers = 1});
        const auto base = dsvc.executeBatch(batch);
        EXPECT_GT(base.totalGates, 0u) << tc.name;
        EXPECT_EQ(base.missingGates, 0u) << tc.name;

        for (const int workers : {1, 4}) {
            const runtime::Rack rack(
                tc.dev, clib, rackConfig(clib, tc.shards, 4096));
            runtime::RuntimeService svc(rack, {.workers = workers});
            const auto compiled = svc.executeBatchCompiled(batch);
            expectIdenticalStats(base, compiled, tc.name);
            EXPECT_GT(compiled.prefetchesIssued, 0u)
                << tc.name << " workers " << workers;
        }
    }
}

TEST(IsaExecution, CompiledMatchesDirectOnTieredRacks)
{
    // The hierarchy acceptance contract through the compiled back
    // end: a tiered rack under every admission policy produces the
    // same deterministic RackStats as a flat single-tier rack on the
    // direct path, at 1 and N workers, while the tiers actually
    // engage (windows staged or demoted into tier 1).
    const auto dev = waveform::DeviceModel::ibm("guadalupe");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    const auto sched = deviceWorkload(dev);
    const std::vector<circuits::Schedule> batch = {sched, sched};

    const runtime::Rack flat(dev, clib, rackConfig(clib, 2, 4096));
    runtime::RuntimeService ref(flat, {.workers = 1});
    const auto base = ref.executeBatch(batch);
    ASSERT_GT(base.totalGates, 0u);

    using runtime::AdmissionPolicy;
    for (const auto policy :
         {AdmissionPolicy::AdmitAlways, AdmissionPolicy::SecondTouch,
          AdmissionPolicy::TinyLfu}) {
        for (const int workers : {1, 4}) {
            runtime::RackConfig rc = rackConfig(clib, 2, 48);
            rc.tier1Windows = 4096;
            rc.admission = policy;
            const runtime::Rack rack(dev, clib, rc);
            runtime::RuntimeService svc(rack, {.workers = workers});
            const auto got = svc.executeBatchCompiled(batch);
            const std::string tag =
                std::string(runtime::admissionPolicyName(policy)) +
                " workers " + std::to_string(workers);
            expectIdenticalStats(base, got, tag.c_str());
            EXPECT_GT(got.cache.tier[1].admitted +
                          got.cache.demotions,
                      0u)
                << tag;
        }
    }
}

TEST(IsaExecution, UncompressedBaselineRunsIdenticallyCompiled)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    runtime::RackConfig rc;
    rc.numShards = 2;
    rc.controller.compressed = false;
    const runtime::Rack rack(dev, clib, rc);
    runtime::RuntimeService svc(rack, {.workers = 2});
    const auto sched = deviceWorkload(dev);
    const auto a = svc.executeBatch({sched});
    const auto b = svc.executeBatchCompiled({sched});
    expectIdenticalStats(a, b, "uncompressed");
    EXPECT_EQ(b.totalWindows, 0u);
    EXPECT_EQ(b.prefetchesIssued, 0u);
    EXPECT_EQ(b.cache.prefetches, 0u);
}

TEST(IsaExecution, UnownedEventsReportedIdentically)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    const runtime::Rack rack(dev, clib, rackConfig(clib, 2, 4096));
    runtime::RuntimeService svc(rack);
    circuits::Circuit c(8);
    for (int q = 0; q < 8; ++q)
        c.x(q);
    const auto sched = circuits::schedule(c, {});
    const auto a = svc.executeBatch({sched});
    const auto b = svc.executeBatchCompiled({sched});
    expectIdenticalStats(a, b, "unowned");
    EXPECT_EQ(b.unownedEvents, 3u);
    EXPECT_EQ(b.totalGates, 5u);
}

TEST(IsaExecution, SimdBackendsBitIdenticalThroughCompiledBatch)
{
    // The decode plane's backend choice must be invisible end to
    // end: executeBatchCompiled (batch cache fills, coalesced PLAY
    // ranges, prefetch pins) under a forced-scalar dispatch and
    // under every SIMD backend the host supports must produce
    // identical RackStats AND bit-identical decoded samples in the
    // fleet cache — the integer codec path guarantees exactness.
    namespace simd = dsp::simd;
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    const auto sched = deviceWorkload(dev);

    const auto runWith = [&](simd::Backend b) {
        simd::setBackend(b);
        const runtime::Rack rack(dev, clib,
                                 rackConfig(clib, 2, 1 << 14));
        runtime::RuntimeService svc(rack, {.workers = 1});
        const auto stats = svc.executeBatchCompiled({sched});
        // Harvest every decoded window still resident in the fleet
        // cache (deterministic: same workload, same capacity).
        std::vector<std::vector<double>> decoded;
        for (const auto &[id, e] : clib.entries()) {
            const core::CompressedChannel *chs[2] = {&e.cw.i,
                                                     &e.cw.q};
            for (std::uint8_t ch = 0; ch < 2; ++ch)
                for (std::uint32_t w = 0;
                     w < chs[ch]->numWindows(); ++w)
                    if (const auto h = rack.cache().lookup(
                            {id, ch, w,
                             rack.currentLibrary().version})) {
                        const auto s = h.samples();
                        decoded.emplace_back(s.begin(), s.end());
                    }
        }
        return std::pair(stats, decoded);
    };

    const simd::Backend ambient = simd::activeBackend();
    const auto [sstats, sdecoded] = runWith(simd::Backend::Scalar);
    ASSERT_FALSE(sdecoded.empty());
    for (simd::Backend b : {simd::Backend::Avx2, simd::Backend::Neon}) {
        if (!simd::backendSupported(b))
            continue;
        const auto [vstats, vdecoded] = runWith(b);
        const std::string tag =
            "backend " + std::string(simd::backendName(b));
        expectIdenticalStats(sstats, vstats, tag.c_str());
        ASSERT_EQ(vdecoded.size(), sdecoded.size());
        ASSERT_EQ(vdecoded, sdecoded)
            << "backend " << simd::backendName(b);
    }
    simd::setBackend(ambient);
}

TEST(IsaExecution, PrefetchRaisesColdCacheHitRate)
{
    // The tentpole claim: on a cold cache, PREFETCH hoisting turns
    // first-use demand misses into hits, so the compiled back end's
    // hit rate strictly beats the direct path on the same workload.
    const auto sc = circuits::surface17();
    const auto dev = waveform::DeviceModel::synthetic(
        "surface17-device", sc.totalQubits(),
        sc.nativeCoupling().edges());
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    const auto sched = circuits::schedule(sc.circuit, {});

    const runtime::Rack directRack(dev, clib,
                                   rackConfig(clib, 1, 1 << 15));
    runtime::RuntimeService direct(directRack, {.workers = 1});
    const auto cold = direct.execute(sched);

    const runtime::Rack compiledRack(dev, clib,
                                     rackConfig(clib, 1, 1 << 15));
    runtime::RuntimeService compiled(compiledRack, {.workers = 1});
    const auto warm = compiled.executeCompiled(sched);

    expectIdenticalStats(cold, warm, "qec");
    EXPECT_GT(warm.prefetchesIssued, 0u);
    EXPECT_EQ(warm.cache.prefetches, warm.prefetchesIssued);
    EXPECT_GT(warm.cache.prefetchHits, 0u);
    EXPECT_GT(warm.cacheHitRate, cold.cacheHitRate);
    // Demand traffic is conserved: the prefetched windows moved from
    // the miss column to the hit column, nothing else changed.
    EXPECT_EQ(warm.cache.hits + warm.cache.misses,
              cold.cache.hits + cold.cache.misses);
}

TEST(IsaExecution, InterpreterCountsMatchProgramStats)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    const runtime::Rack rack(dev, clib, rackConfig(clib, 1, 4096));
    const auto sched = deviceWorkload(dev);
    const Compiler comp(rack);
    ProgramStats st;
    const auto prog = comp.compileShard(sched, &st);

    Interpreter interp(rack);
    const auto run = interp.run(prog);
    EXPECT_EQ(run.stats.instructions, st.instructions);
    EXPECT_EQ(run.stats.plays, st.playInstructions);
    EXPECT_EQ(run.stats.waits, st.waitInstructions);
    EXPECT_EQ(run.stats.prefetchesIssued +
                  run.stats.prefetchesSkipped,
              st.prefetchInstructions);
    EXPECT_EQ(run.stats.barriers, 1u);
    EXPECT_EQ(run.play.gates, st.playedEvents);
    EXPECT_GT(run.play.samples, 0u);
}

TEST(IsaExecution, InterpreterRejectsForeignPrograms)
{
    // A program whose gate table references gates the rack's library
    // does not hold is a corrupt or misrouted stream.
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    const runtime::Rack rack(dev, clib, rackConfig(clib, 1, 4096));
    InstructionProgram prog;
    const auto ref =
        prog.internGate({waveform::GateType::X, 99, -1});
    prog.emit(Instruction::play(ref, 0, 0, 1));
    prog.emit(Instruction::halt());
    Interpreter interp(rack);
    EXPECT_THROW(interp.run(prog), std::invalid_argument);
}

TEST(IsaProgram, WordStreamCarriesLibraryVersionStamp)
{
    InstructionProgram prog;
    const auto ref =
        prog.internGate({waveform::GateType::X, 0, -1});
    prog.emit(Instruction::play(ref, 0, 0, 1));
    prog.emit(Instruction::halt());
    // A >32-bit version must survive the two-word header split.
    const std::uint64_t v = (7ull << 40) | 12345ull;
    prog.setLibraryVersion(v);
    EXPECT_EQ(prog.libraryVersion(), v);
    const auto back = InstructionProgram::fromWords(prog.toWords());
    EXPECT_EQ(back.libraryVersion(), v);
}

TEST(IsaExecution, InterpreterRejectsStaleProgramsAfterSwap)
{
    // The epoch gate: a program compiled before a hot-swap must be
    // refused by an interpreter pinned after it — silently playing a
    // retired calibration's window layout is the failure mode the
    // version stamp exists to catch.
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    auto libA = std::make_shared<core::CompressedLibrary>(clib);
    auto libB = std::make_shared<core::CompressedLibrary>(clib);
    runtime::Rack rack(dev, libA, rackConfig(clib, 1, 1 << 12));

    circuits::Circuit c(2);
    c.x(0);
    c.x(1);
    const auto sched = circuits::schedule(c, {});
    const Compiler comp(rack); // pins the pre-swap epoch
    const auto stale = comp.compileShard(sched);
    EXPECT_EQ(stale.libraryVersion(),
              comp.pinnedLibrary().version);

    rack.swapLibrary(libB);
    Interpreter fresh(rack); // pins the post-swap epoch
    EXPECT_THROW(fresh.run(stale), std::invalid_argument);
    // An interpreter still pinned to the old epoch runs it fine —
    // that is exactly how in-flight batches survive a swap.
    Interpreter pinned(rack, comp.pinnedLibrary());
    const auto res = pinned.run(stale);
    EXPECT_GT(res.stats.plays, 0u);
    // Recompiling against the new epoch unblocks the fresh path.
    const Compiler recomp(rack);
    const auto res2 = fresh.run(recomp.compileShard(sched));
    EXPECT_EQ(res2.stats.plays, res.stats.plays);
}

TEST(ProgramCacheTest, LruFirstWinsAndStaleSweep)
{
    ProgramCache cache(2);
    InstructionProgram p1, p2, p3;
    p1.emit(Instruction::halt());
    p2.emit(Instruction::halt());
    p3.emit(Instruction::halt());
    const ProgramKey k1{1, 0, 1}, k2{2, 0, 1}, k3{3, 0, 2};

    EXPECT_EQ(cache.get(k1), nullptr);
    const auto a1 = cache.put(k1, std::move(p1));
    // First-wins: a racing second put of the same key returns the
    // incumbent artifact, not a duplicate.
    InstructionProgram dup;
    dup.emit(Instruction::halt());
    EXPECT_EQ(cache.put(k1, std::move(dup)), a1);
    EXPECT_EQ(cache.get(k1), a1);

    cache.put(k2, std::move(p2));
    cache.get(k1);                // k1 most-recent; k2 is the victim
    cache.put(k3, std::move(p3)); // evicts k2
    EXPECT_EQ(cache.get(k2), nullptr);
    EXPECT_NE(cache.get(k1), nullptr);

    // The swap sweep: entries of retired versions drop, current stay.
    cache.dropStale(2);
    EXPECT_EQ(cache.get(k1), nullptr); // version 1 < 2: swept
    EXPECT_NE(cache.get(k3), nullptr); // version 2: kept
    const auto st = cache.stats();
    EXPECT_EQ(st.staleDropped, 1u);
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.entries, 1u);

    // Capacity 0 disables caching but still hands back an artifact.
    ProgramCache off(0);
    InstructionProgram p4;
    p4.emit(Instruction::halt());
    EXPECT_NE(off.put({9, 0, 1}, std::move(p4)), nullptr);
    EXPECT_EQ(off.get({9, 0, 1}), nullptr);
}

TEST(IsaExecution, ServiceProgramCacheServesRepeatBatches)
{
    // Steady-state serving of a repeating workload compiles each
    // (schedule, shard) once; later batches hit the program cache.
    // Results stay bit-identical, and a hot-swap invalidates the lot
    // (new version in the key) followed by a sweep.
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = buildCompressed(lib);
    auto libA = std::make_shared<core::CompressedLibrary>(clib);
    auto libB = std::make_shared<core::CompressedLibrary>(clib);
    runtime::Rack rack(dev, libA, rackConfig(clib, 2, 1 << 12));
    runtime::RuntimeService svc(rack, {.workers = 1});
    const auto sched = deviceWorkload(dev);

    const auto first = svc.executeBatchCompiled({sched});
    const auto cold = svc.programCacheStats();
    EXPECT_EQ(cold.hits, 0u);
    EXPECT_GT(cold.insertions, 0u);

    const auto second = svc.executeBatchCompiled({sched});
    const auto warm = svc.programCacheStats();
    EXPECT_EQ(warm.insertions, cold.insertions); // nothing recompiled
    EXPECT_GT(warm.hits, 0u);
    expectIdenticalStats(first, second, "cached replay");

    rack.swapLibrary(libB);
    svc.executeBatchCompiled({sched});
    const auto swapped = svc.programCacheStats();
    EXPECT_GT(swapped.insertions, warm.insertions); // recompiled
    EXPECT_GT(swapped.staleDropped, 0u);            // old swept
}

} // namespace
} // namespace compaqt::isa
