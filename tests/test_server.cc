/**
 * @file
 * Tests for the serving plane (runtime::Server): submission and
 * completion, admission control / backpressure, graceful shutdown
 * semantics, per-tenant accounting, and the headline determinism
 * contract — a job's RackStats is a pure function of (rack, schedule),
 * identical for 1 vs N workers and for any submission interleaving or
 * batch coalescing of the same job set.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "circuits/scheduler.hh"
#include "core/pipeline.hh"
#include "runtime/rack.hh"
#include "runtime/server.hh"
#include "runtime/service.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"

namespace compaqt::runtime
{
namespace
{

/** Small bogota workload: two distinct schedules and a compressed
 *  library shared by every test. */
struct ServerFixture
{
    waveform::DeviceModel dev = waveform::DeviceModel::ibm("bogota");
    core::CompressedLibrary clib;
    circuits::Schedule schedA;
    circuits::Schedule schedB;

    ServerFixture()
    {
        const auto lib = waveform::PulseLibrary::build(dev);
        clib = core::CompressionPipeline::with("int-dct")
                   .window(16)
                   .mseTarget(1e-5)
                   .build()
                   .compressLibrary(lib);

        circuits::Circuit a(5);
        for (int q = 0; q < 5; ++q)
            a.x(q);
        a.measureAll();
        schedA = circuits::schedule(a, {});

        circuits::Circuit b(5);
        for (const auto &[x, y] : dev.coupling())
            b.cx(x, y);
        schedB = circuits::schedule(b, {});
    }

    RackConfig
    rackConfig(std::size_t cache_windows = 4096) const
    {
        RackConfig rc;
        rc.numShards = 2;
        rc.controller.compressed = true;
        rc.controller.windowSize = 16;
        rc.controller.memoryWidth = clib.worstCaseWindowWords();
        rc.cacheWindows = cache_windows;
        return rc;
    }
};

/** Every deterministic field of a job rollup (everything except the
 *  batch-scoped cache counters and wall-clock throughput). */
void
expectSameDemand(const RackStats &a, const RackStats &b)
{
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (std::size_t s = 0; s < a.shards.size(); ++s) {
        const auto &x = a.shards[s];
        const auto &y = b.shards[s];
        EXPECT_EQ(x.demand.peakBanks, y.demand.peakBanks) << s;
        EXPECT_EQ(x.demand.peakChannels, y.demand.peakChannels) << s;
        EXPECT_EQ(x.demand.peakBandwidthBytesPerSec,
                  y.demand.peakBandwidthBytesPerSec)
            << s;
        EXPECT_EQ(x.demand.feasible, y.demand.feasible) << s;
        EXPECT_EQ(x.demand.totalSamples, y.demand.totalSamples) << s;
        EXPECT_EQ(x.demand.totalWordsRead, y.demand.totalWordsRead)
            << s;
        EXPECT_EQ(x.demand.missingGates, y.demand.missingGates) << s;
        EXPECT_EQ(x.demand.bypassSamples, y.demand.bypassSamples)
            << s;
        EXPECT_EQ(x.gatesPlayed, y.gatesPlayed) << s;
        EXPECT_EQ(x.windowsDecoded, y.windowsDecoded) << s;
        EXPECT_EQ(x.samplesDecoded, y.samplesDecoded) << s;
        EXPECT_EQ(x.samplesBypassed, y.samplesBypassed) << s;
    }
    EXPECT_EQ(a.fleetPeakBanks, b.fleetPeakBanks);
    EXPECT_EQ(a.fleetPeakChannels, b.fleetPeakChannels);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.totalGates, b.totalGates);
    EXPECT_EQ(a.totalSamples, b.totalSamples);
    EXPECT_EQ(a.totalBypassSamples, b.totalBypassSamples);
    EXPECT_EQ(a.totalWindows, b.totalWindows);
    EXPECT_EQ(a.missingGates, b.missingGates);
    EXPECT_EQ(a.unownedEvents, b.unownedEvents);
}

TEST(Server, CompletesSubmittedJobsWithTimingAndTenantStats)
{
    const ServerFixture fx;
    const Rack rack(fx.dev, fx.clib, fx.rackConfig());
    Server server(rack,
                  {.workers = 2, .queueDepth = 64, .maxBatch = 8});

    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 10; ++i)
        futs.push_back(server.submit(
            {i % 2 ? "alice" : "bob", i % 2 ? fx.schedA : fx.schedB}));
    for (auto &f : futs) {
        const auto r = f.get();
        EXPECT_EQ(r.status, JobStatus::Completed)
            << jobStatusName(r.status) << " " << r.error;
        EXPECT_GT(r.stats.totalGates, 0u);
        EXPECT_GE(r.timing.queueSeconds, 0.0);
        EXPECT_GE(r.timing.executeSeconds, 0.0);
        EXPECT_GE(r.timing.totalSeconds, r.timing.executeSeconds);
    }
    server.drain();

    const auto s = server.stats();
    EXPECT_EQ(s.submitted, 10u);
    EXPECT_EQ(s.completed, 10u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.cancelled, 0u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.queuedNow, 0u);
    EXPECT_GE(s.batchesDispatched, 1u);
    EXPECT_GE(s.meanBatchFill, 1.0);
    EXPECT_EQ(s.totalLatency.count, 10u);
    EXPECT_GE(s.totalLatency.p95, s.totalLatency.p50);
    EXPECT_GE(s.totalLatency.p99, s.totalLatency.p95);
    EXPECT_GE(s.totalLatency.max, s.totalLatency.p99);
    // Mixed tenants share the rack cache; traffic was recorded.
    EXPECT_GT(s.cache.hits + s.cache.misses, 0u);
    ASSERT_EQ(s.tenants.size(), 2u);
    EXPECT_EQ(s.tenants.at("alice").completed, 5u);
    EXPECT_EQ(s.tenants.at("bob").completed, 5u);
    EXPECT_EQ(s.tenants.at("alice").totalLatency.count, 5u);
    EXPECT_GT(s.tenants.at("bob").gatesPlayed, 0u);
    EXPECT_EQ(s.gatesPlayed,
              s.tenants.at("alice").gatesPlayed +
                  s.tenants.at("bob").gatesPlayed);
}

TEST(Server, RejectsWhenQueueFullAndRecovers)
{
    const ServerFixture fx;
    const Rack rack(fx.dev, fx.clib, fx.rackConfig());
    Server server(rack,
                  {.workers = 1, .queueDepth = 3, .maxBatch = 2});

    // Hold dispatch so the queue fills deterministically.
    server.pause();
    std::vector<std::future<JobResult>> accepted;
    for (int i = 0; i < 3; ++i)
        accepted.push_back(server.submit({"t", fx.schedA}));
    EXPECT_EQ(server.queued(), 3u);

    // The queue is at depth: the next submit is rejected with a
    // status, immediately — the caller is never blocked.
    auto over = server.submit({"t", fx.schedA});
    ASSERT_EQ(over.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const auto r = over.get();
    EXPECT_EQ(r.status, JobStatus::Rejected);
    EXPECT_FALSE(r.error.empty());

    // Backpressure clears once the dispatcher catches up.
    server.resume();
    server.drain();
    for (auto &f : accepted)
        EXPECT_EQ(f.get().status, JobStatus::Completed);
    auto retry = server.submit({"t", fx.schedA});
    EXPECT_EQ(retry.get().status, JobStatus::Completed);

    const auto s = server.stats();
    EXPECT_EQ(s.submitted, 5u);
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.completed, 4u);
    EXPECT_EQ(s.tenants.at("t").rejected, 1u);
}

TEST(Server, ShutdownCancelsQueuedJobsDeterministically)
{
    const ServerFixture fx;
    const Rack rack(fx.dev, fx.clib, fx.rackConfig());
    Server server(rack,
                  {.workers = 1, .queueDepth = 8, .maxBatch = 4});

    server.pause(); // nothing dispatches: all 5 jobs are queued
    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 5; ++i)
        futs.push_back(server.submit({"t", fx.schedA}));
    server.shutdown();

    for (auto &f : futs) {
        const auto r = f.get();
        EXPECT_EQ(r.status, JobStatus::Cancelled);
        EXPECT_GE(r.timing.queueSeconds, 0.0);
        EXPECT_FALSE(r.error.empty());
    }
    EXPECT_TRUE(server.stopped());

    // Admission after shutdown rejects immediately.
    auto late = server.submit({"t", fx.schedA});
    ASSERT_EQ(late.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(late.get().status, JobStatus::Rejected);

    const auto s = server.stats();
    EXPECT_EQ(s.cancelled, 5u);
    EXPECT_EQ(s.completed, 0u);
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.tenants.at("t").cancelled, 5u);
}

TEST(Server, ShutdownCompletesInFlightJobs)
{
    const ServerFixture fx;
    const Rack rack(fx.dev, fx.clib, fx.rackConfig());
    std::vector<std::future<JobResult>> futs;
    {
        Server server(
            rack, {.workers = 2, .queueDepth = 16, .maxBatch = 4});
        for (int i = 0; i < 8; ++i)
            futs.push_back(server.submit({"t", fx.schedB}));
        // Destructor shutdown: whatever was dispatched completes,
        // the rest is cancelled — never dropped, never blocked.
    }
    std::size_t completed = 0, cancelled = 0;
    for (auto &f : futs) {
        const auto r = f.get();
        ASSERT_TRUE(r.status == JobStatus::Completed ||
                    r.status == JobStatus::Cancelled)
            << jobStatusName(r.status);
        completed += r.status == JobStatus::Completed;
        cancelled += r.status == JobStatus::Cancelled;
    }
    EXPECT_EQ(completed + cancelled, 8u);
}

TEST(Server, ConfigDefaultsAreClamped)
{
    const ServerFixture fx;
    const Rack rack(fx.dev, fx.clib, fx.rackConfig());
    // workers <= 0 resolves to the clamped hardware default;
    // queueDepth/maxBatch 0 clamp to 1 instead of wedging the queue.
    Server server(rack, {.workers = 0, .queueDepth = 0, .maxBatch = 0});
    EXPECT_GE(server.workers(), 1);
    EXPECT_EQ(server.queueDepth(), 1u);
    EXPECT_EQ(server.maxBatch(), 1u);
    auto f = server.submit({"t", fx.schedA});
    EXPECT_EQ(f.get().status, JobStatus::Completed);
}

TEST(Server, DrainOnIdleServerReturnsImmediately)
{
    const ServerFixture fx;
    const Rack rack(fx.dev, fx.clib, fx.rackConfig());
    Server server(rack, {.workers = 1});
    server.drain();
    EXPECT_EQ(server.stats().submitted, 0u);
}

TEST(Server, PerJobStatsMatchSynchronousExecution)
{
    const ServerFixture fx;
    // Reference: each schedule alone through the synchronous service.
    const Rack refRack(fx.dev, fx.clib, fx.rackConfig());
    RuntimeService ref(refRack, {.workers = 1});
    const auto refA = ref.executeBatchPerJob({fx.schedA}).jobs[0];
    const auto refB = ref.executeBatchPerJob({fx.schedB}).jobs[0];

    const Rack rack(fx.dev, fx.clib, fx.rackConfig());
    Server server(rack,
                  {.workers = 2, .queueDepth = 32, .maxBatch = 8});
    auto fa = server.submit({"a", fx.schedA});
    auto fb = server.submit({"b", fx.schedB});
    const auto ra = fa.get();
    const auto rb = fb.get();
    ASSERT_EQ(ra.status, JobStatus::Completed);
    ASSERT_EQ(rb.status, JobStatus::Completed);
    expectSameDemand(ra.stats, refA);
    expectSameDemand(rb.stats, refB);
}

TEST(Server, ResultsIdenticalAcrossWorkersAndInterleavings)
{
    // The serving determinism contract (mirrors the PR 4
    // compile-plane identity test): the same job set submitted in any
    // order, from any number of threads, against any worker count
    // yields bit-identical per-job RackStats and identical ServerStats
    // volume rollups.
    const ServerFixture fx;
    const Rack refRack(fx.dev, fx.clib, fx.rackConfig());
    RuntimeService ref(refRack, {.workers = 1});
    const auto refA = ref.executeBatchPerJob({fx.schedA}).jobs[0];
    const auto refB = ref.executeBatchPerJob({fx.schedB}).jobs[0];
    constexpr int kPerTenant = 4;

    for (const int workers : {1, 4}) {
        for (const bool threaded : {false, true}) {
            const Rack rack(fx.dev, fx.clib, fx.rackConfig());
            // maxBatch 3 with 8 jobs: coalesced batch boundaries
            // never align with job boundaries, so attribution is
            // genuinely exercised across compositions.
            Server server(
                rack,
                {.workers = workers, .queueDepth = 64, .maxBatch = 3});
            std::vector<std::future<JobResult>> futsA, futsB;
            futsA.reserve(kPerTenant);
            futsB.reserve(kPerTenant);
            auto submitA = [&] {
                for (int i = 0; i < kPerTenant; ++i)
                    futsA.push_back(server.submit({"a", fx.schedA}));
            };
            auto submitB = [&] {
                for (int i = 0; i < kPerTenant; ++i)
                    futsB.push_back(server.submit({"b", fx.schedB}));
            };
            if (threaded) {
                std::thread ta(submitA), tb(submitB);
                ta.join();
                tb.join();
            } else {
                submitB(); // reversed order vs the threaded case
                submitA();
            }
            for (auto &f : futsA) {
                const auto r = f.get();
                ASSERT_EQ(r.status, JobStatus::Completed);
                expectSameDemand(r.stats, refA);
            }
            for (auto &f : futsB) {
                const auto r = f.get();
                ASSERT_EQ(r.status, JobStatus::Completed);
                expectSameDemand(r.stats, refB);
            }
            server.drain();
            const auto s = server.stats();
            EXPECT_EQ(s.completed, 2u * kPerTenant);
            EXPECT_EQ(s.gatesPlayed,
                      kPerTenant *
                          (refA.totalGates + refB.totalGates));
            EXPECT_EQ(s.samplesDecoded,
                      kPerTenant *
                          (refA.totalSamples + refB.totalSamples));
            EXPECT_EQ(s.tenants.at("a").gatesPlayed,
                      kPerTenant * refA.totalGates);
            EXPECT_EQ(s.tenants.at("b").samplesDecoded,
                      kPerTenant * refB.totalSamples);
        }
    }
}

TEST(Server, ConcurrentMixedTenantsKeepCacheLoadBearing)
{
    // Many tenants hammering the same hot pulses through one rack:
    // after the cold pass, the shared decoded-window cache serves the
    // fleet — the serving-plane workload it exists for.
    const ServerFixture fx;
    const Rack rack(fx.dev, fx.clib, fx.rackConfig(1 << 14));
    Server server(rack,
                  {.workers = 4, .queueDepth = 256, .maxBatch = 8});
    std::vector<std::thread> tenants;
    for (int t = 0; t < 4; ++t)
        tenants.emplace_back([&, t] {
            std::vector<std::future<JobResult>> futs;
            for (int i = 0; i < 8; ++i)
                futs.push_back(server.submit(
                    {"tenant-" + std::to_string(t),
                     i % 2 ? fx.schedA : fx.schedB}));
            for (auto &f : futs)
                ASSERT_EQ(f.get().status, JobStatus::Completed);
        });
    for (auto &t : tenants)
        t.join();
    server.drain();
    const auto s = server.stats();
    EXPECT_EQ(s.completed, 32u);
    EXPECT_EQ(s.tenants.size(), 4u);
    // 32 replays of two schedules: overwhelmingly cache hits.
    EXPECT_GT(s.cacheHitRate, 0.9);
    EXPECT_GT(s.cache.hits, s.cache.misses);
}

/** Fleet fixture: a second calibration of the same gate set (coarser
 *  MSE target, so its windows and sample tallies genuinely differ)
 *  and a rack config whose memory width admits both libraries. */
struct FleetFixture : ServerFixture
{
    std::shared_ptr<const core::CompressedLibrary> libA;
    std::shared_ptr<const core::CompressedLibrary> libB;

    FleetFixture()
    {
        libA = std::make_shared<core::CompressedLibrary>(clib);
        const auto pulses = waveform::PulseLibrary::build(dev);
        libB = std::make_shared<core::CompressedLibrary>(
            core::CompressionPipeline::with("int-dct")
                .window(16)
                .mseTarget(1e-3)
                .build()
                .compressLibrary(pulses));
    }

    RackConfig
    fleetRackConfig(std::size_t cache_windows = 4096) const
    {
        RackConfig rc = rackConfig(cache_windows);
        rc.controller.memoryWidth =
            std::max(libA->worstCaseWindowWords(),
                     libB->worstCaseWindowWords());
        return rc;
    }
};

TEST(FleetServer, RoutesTenantsAcrossRacksWithPerRackRollups)
{
    const FleetFixture fx;
    FleetConfig fc;
    fc.racks = 3;
    fc.rack = fx.fleetRackConfig();
    fc.workers = 2;
    fc.queueDepth = 256;
    fc.maxBatch = 4;
    fc.routing = RoutingPolicy::ConsistentHash;
    // Queues never back up in this test; a huge spill threshold
    // additionally pins every tenant to its hash-home rack so the
    // affinity contract below is exact.
    fc.spillQueueDepth = 1u << 20;
    Server server(fx.dev, fx.libA, fc);
    ASSERT_EQ(server.numRacks(), 3);

    constexpr int kTenants = 16, kJobs = 4;
    std::vector<std::future<JobResult>> futs;
    for (int j = 0; j < kJobs; ++j)
        for (int t = 0; t < kTenants; ++t)
            futs.push_back(server.submit(
                {"tenant-" + std::to_string(t),
                 t % 2 ? fx.schedA : fx.schedB}));
    std::map<std::string, int> home;
    for (std::size_t i = 0; i < futs.size(); ++i) {
        const auto r = futs[i].get();
        ASSERT_EQ(r.status, JobStatus::Completed);
        ASSERT_GE(r.rack, 0);
        ASSERT_LT(r.rack, 3);
        // Consistent hash: every job of one tenant lands on the
        // tenant's home rack (no spill in an unloaded fleet).
        const auto [it, fresh] = home.emplace(r.tenant, r.rack);
        if (!fresh) {
            EXPECT_EQ(it->second, r.rack) << r.tenant;
        }
    }
    server.drain();
    const auto s = server.stats();
    ASSERT_EQ(s.racks.size(), 3u);
    std::uint64_t sum = 0, gates = 0;
    for (const auto &r : s.racks) {
        EXPECT_GT(r.completed, 0u); // 16 tenants spread over 3 racks
        EXPECT_EQ(r.failed, 0u);
        EXPECT_EQ(r.queuedNow, 0u);
        sum += r.completed;
        gates += r.gatesPlayed;
    }
    EXPECT_EQ(sum, s.completed);
    EXPECT_EQ(sum, static_cast<std::uint64_t>(kTenants * kJobs));
    EXPECT_EQ(gates, s.gatesPlayed);
}

TEST(FleetServer, LeastLoadedRoutingCompletesEverything)
{
    const FleetFixture fx;
    FleetConfig fc;
    fc.racks = 2;
    fc.rack = fx.fleetRackConfig();
    fc.workers = 1;
    fc.routing = RoutingPolicy::LeastLoaded;
    Server server(fx.dev, fx.libA, fc);
    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 12; ++i)
        futs.push_back(server.submit({"t", fx.schedA}));
    for (auto &f : futs)
        ASSERT_EQ(f.get().status, JobStatus::Completed);
    server.drain();
    EXPECT_EQ(server.stats().completed, 12u);
}

TEST(FleetServer, HotSwapUnderLoadBitIdenticalPerPinnedVersion)
{
    // The headline hot-swap contract: tenant threads hammer submit()
    // while a calibrator publishes a new library mid-stream. No job
    // is dropped, none fails, and every job's deterministic rollup is
    // bit-identical to a synchronous run against the library version
    // its batch pinned — under both back ends and 1 vs N workers
    // (run under TSan in CI, this is also the data-race suite).
    const FleetFixture fx;
    const RackConfig rc = fx.fleetRackConfig();

    // Per-version synchronous references for both schedules.
    const Rack rackRefA(fx.dev, fx.libA, rc);
    const Rack rackRefB(fx.dev, fx.libB, rc);
    RuntimeService refSvcA(rackRefA, {.workers = 1});
    RuntimeService refSvcB(rackRefB, {.workers = 1});
    const auto refAa = refSvcA.executeBatchPerJob({fx.schedA}).jobs[0];
    const auto refAb = refSvcA.executeBatchPerJob({fx.schedB}).jobs[0];
    const auto refBa = refSvcB.executeBatchPerJob({fx.schedA}).jobs[0];
    const auto refBb = refSvcB.executeBatchPerJob({fx.schedB}).jobs[0];
    // The two calibrations must actually be distinguishable, or the
    // per-version comparison below proves nothing. Window counts
    // match (same window size); the words read per window do not
    // (the coarser MSE target keeps fewer coefficients).
    const auto wordsRead = [](const RackStats &r) {
        std::uint64_t words = 0;
        for (const auto &sh : r.shards)
            words += sh.demand.totalWordsRead;
        return words;
    };
    ASSERT_NE(wordsRead(refAa), wordsRead(refBa));

    for (const int workers : {1, 4}) {
        for (const DispatchBackend backend :
             {DispatchBackend::Direct, DispatchBackend::Compiled}) {
            FleetConfig fc;
            fc.racks = 2;
            fc.rack = rc;
            fc.workers = workers;
            fc.queueDepth = 512;
            fc.maxBatch = 4;
            fc.backend = backend;
            Server server(fx.dev, fx.libA, fc);
            const std::uint64_t v1 = server.stats().libraryVersion;

            constexpr int kThreads = 3, kPerThread = 20;
            std::vector<std::thread> tenants;
            std::vector<std::vector<std::future<JobResult>>> futs(
                kThreads);
            for (int t = 0; t < kThreads; ++t)
                tenants.emplace_back([&, t] {
                    for (int i = 0; i < kPerThread; ++i)
                        futs[t].push_back(server.submit(
                            {"tenant-" + std::to_string(t),
                             i % 2 ? fx.schedA : fx.schedB}));
                });
            // Calibrator: publish mid-stream, with submissions in
            // full flight. Never pauses, never drains.
            const std::uint64_t v2 = server.swapLibrary(fx.libB);
            EXPECT_GT(v2, v1);
            for (auto &t : tenants)
                t.join();

            for (int t = 0; t < kThreads; ++t)
                for (int i = 0; i < kPerThread; ++i) {
                    const auto r = futs[t][static_cast<std::size_t>(i)]
                                       .get();
                    ASSERT_EQ(r.status, JobStatus::Completed)
                        << r.error;
                    ASSERT_TRUE(r.libraryVersion == v1 ||
                                r.libraryVersion == v2);
                    const bool odd = i % 2 != 0;
                    const RackStats &ref =
                        r.libraryVersion == v1 ? (odd ? refAa : refAb)
                                               : (odd ? refBa : refBb);
                    expectSameDemand(r.stats, ref);
                }
            // A job submitted after the swap deterministically pins
            // the new epoch — both versions are always exercised.
            const auto post =
                server.submit({"post-swap", fx.schedA}).get();
            ASSERT_EQ(post.status, JobStatus::Completed);
            EXPECT_EQ(post.libraryVersion, v2);
            expectSameDemand(post.stats, refBa);

            server.drain();
            const auto s = server.stats();
            EXPECT_EQ(s.librarySwaps, 1u);
            EXPECT_EQ(s.libraryVersion, v2);
            EXPECT_EQ(s.failed, 0u);
            EXPECT_EQ(s.rejected, 0u);
            std::uint64_t by_version = 0;
            for (const auto &[v, n] : s.jobsByLibraryVersion) {
                EXPECT_TRUE(v == v1 || v == v2);
                by_version += n;
            }
            EXPECT_EQ(by_version, s.completed);
        }
    }
}

TEST(FleetServer, HotSwapReleasesRetiredEpochWithoutDraining)
{
    // Epoch lifetime: the fleet holds the old calibration only while
    // something pins it. Once the swap lands and in-flight work
    // finishes, the old library's memory is released — no flush, no
    // drain window, observed through a weak_ptr.
    const FleetFixture fx;
    FleetConfig fc;
    fc.racks = 2;
    fc.rack = fx.fleetRackConfig();
    fc.workers = 2;
    auto libA = std::make_shared<core::CompressedLibrary>(*fx.libA);
    std::weak_ptr<const core::CompressedLibrary> wA = libA;
    Server server(fx.dev, libA, fc);
    libA.reset();
    ASSERT_FALSE(wA.expired()); // current epoch: registry owns it

    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 8; ++i)
        futs.push_back(server.submit({"t", fx.schedA}));
    for (auto &f : futs)
        ASSERT_EQ(f.get().status, JobStatus::Completed);

    server.swapLibrary(fx.libB);
    server.drain();
    // Nothing pins the retired epoch anymore: released, while the
    // server keeps serving on the new one with no cache flush.
    EXPECT_TRUE(wA.expired());
    EXPECT_EQ(server.stats().libraryVersionsLive, 1u);
    const auto post = server.submit({"t", fx.schedA}).get();
    ASSERT_EQ(post.status, JobStatus::Completed);
}

} // namespace
} // namespace compaqt::runtime
