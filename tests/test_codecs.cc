/**
 * @file
 * Tests for the pluggable codec layer: CodecRegistry lookup and
 * validation, round-trip property tests iterating every registered
 * codec over window sizes and pulse shapes, the CompressionPipeline
 * facade, registration extensibility (a codec registered in this
 * translation unit is usable from the pipeline, Algorithm 1, and
 * CompressedLibrary without modifying any of them), and the versioned
 * serialization header.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "compaqt.hh"
#include "dsp/int_dct.hh"
#include "dsp/simd.hh"
#include "dsp/metrics.hh"
#include "waveform/complex_gates.hh"

namespace compaqt::core
{
namespace
{

// ------------------------------------------------ a codec of our own
//
// "unit-raw": stores every window's samples verbatim (identity
// transform + trailing-zero RLE). Registered from this translation
// unit only — none of the core entry points know about it. It
// implements only the two required span primitives, so it also
// exercises the base-class decode-and-slice fallback for
// decompressWindowInto.

class RawCodec final : public ICodec
{
  public:
    explicit RawCodec(std::size_t ws)
        : ws_(ws)
    {
    }

    std::string_view name() const override { return "unit-raw"; }
    std::string_view label() const override { return "unit-RAW"; }
    bool isInteger() const override { return false; }
    std::size_t windowSize() const override { return ws_; }

    void
    encodeInto(ConstSampleSpan x, double threshold,
               CompressedChannel &out) const override
    {
        out.numSamples = x.size();
        out.windowSize = ws_;
        out.delta = {};
        const std::size_t nwin = (x.size() + ws_ - 1) / ws_;
        out.windows.resize(nwin);
        for (std::size_t w = 0; w < nwin; ++w) {
            const std::size_t begin = w * ws_;
            const std::size_t len = std::min(ws_, x.size() - begin);
            std::vector<double> win(ws_, 0.0);
            for (std::size_t k = 0; k < len; ++k)
                win[k] = std::abs(x[begin + k]) < threshold
                             ? 0.0
                             : x[begin + k];
            packWindow<double>(win, out.windows[w]);
        }
    }

    void
    decodeInto(const CompressedChannel &ch,
               SampleSpan out) const override
    {
        ASSERT_EQ(out.size(), ch.numSamples);
        std::size_t n = 0;
        for (const auto &w : ch.windows) {
            for (double c : w.fcoeffs) {
                if (n >= ch.numSamples)
                    return;
                out[n++] = c;
            }
            for (std::uint32_t z = 0; z < w.zeros; ++z) {
                if (n >= ch.numSamples)
                    return;
                out[n++] = 0.0;
            }
        }
    }

  private:
    std::size_t ws_;
};

const CodecRegistrar kRawRegistrar("unit-raw", [](std::size_t ws) {
    return std::make_unique<RawCodec>(ws == 0 ? 16 : ws);
});

// ------------------------------------------------------- pulse shapes

struct Shape
{
    const char *name;
    waveform::IqWaveform wf;
};

std::vector<Shape>
testShapes()
{
    std::vector<Shape> shapes;
    waveform::IqWaveform gauss;
    gauss.i = waveform::liftedGaussian(144, 36.0, 0.2);
    gauss.q.assign(144, 0.0);
    shapes.push_back({"gaussian", std::move(gauss)});
    shapes.push_back({"drag", waveform::drag(144, 36.0, 0.2, 1.2)});
    shapes.push_back(
        {"flat-top", waveform::gaussianSquare(1360, 200, 0.12, 0.15)});
    // Optimal-control (GRAPE-like) pulse with high harmonic content.
    shapes.push_back({"grape-like", waveform::toffoliPulse()});
    return shapes;
}

// --------------------------------------------------------- registry

TEST(CodecRegistry, BuiltinsAreRegistered)
{
    auto &reg = CodecRegistry::instance();
    for (const char *name : {"delta", "dct-n", "dct-w", "int-dct"})
        EXPECT_TRUE(reg.contains(name)) << name;
    const auto names = reg.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_GE(names.size(), 5u); // four builtins + unit-raw
}

TEST(CodecRegistry, AliasResolvesToSameCodec)
{
    auto &reg = CodecRegistry::instance();
    ASSERT_TRUE(reg.contains("int-dct-w"));
    const auto a = reg.create("int-dct-w", 16);
    const auto b = reg.create("int-dct", 16);
    EXPECT_EQ(a->name(), b->name());
}

TEST(CodecRegistry, UnknownCodecIsFatal)
{
    EXPECT_DEATH(
        { auto c = CodecRegistry::instance().create("nope", 16); },
        "unknown codec");
}

TEST(CodecRegistry, DuplicateRegistrationIsFatal)
{
    EXPECT_DEATH(
        {
            CodecRegistry::instance().add(
                "delta", [](std::size_t) -> std::unique_ptr<ICodec> {
                    return nullptr;
                });
        },
        "duplicate");
}

TEST(CodecRegistry, IntDctRejectsBadWindowSize)
{
    EXPECT_DEATH(
        { auto c = CodecRegistry::instance().create("int-dct", 12); },
        "window size");
}

// --------------------------------------- round-trip property tests

class RegistryRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::size_t>>
{
};

TEST_P(RegistryRoundTrip, MeetsConfiguredMseTarget)
{
    const auto [codec, ws] = GetParam();
    if (codec == "int-dct" && !dsp::intDctSupported(ws))
        GTEST_SKIP() << "unsupported int-dct window";

    constexpr double kTarget = 1e-5;
    const auto pipe = CompressionPipeline::with(codec)
                          .window(ws)
                          .mseTarget(kTarget)
                          .build();
    for (const auto &shape : testShapes()) {
        const auto r = pipe.compressToTarget(shape.wf);
        EXPECT_TRUE(r.converged)
            << codec << " ws=" << ws << " " << shape.name;
        EXPECT_LE(r.mse, kTarget)
            << codec << " ws=" << ws << " " << shape.name;

        const auto rt = pipe.decompress(r.compressed);
        ASSERT_EQ(rt.i.size(), shape.wf.i.size());
        ASSERT_EQ(rt.q.size(), shape.wf.q.size());
        EXPECT_LE(std::max(dsp::mse(shape.wf.i, rt.i),
                           dsp::mse(shape.wf.q, rt.q)),
                  kTarget)
            << codec << " ws=" << ws << " " << shape.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredCodecs, RegistryRoundTrip,
    ::testing::Combine(
        ::testing::ValuesIn(CodecRegistry::instance().names()),
        ::testing::Values(std::size_t{4}, std::size_t{8},
                          std::size_t{16}, std::size_t{32})),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        std::replace(name.begin(), name.end(), '-', '_');
        return name + "_ws" + std::to_string(std::get<1>(info.param));
    });

// -------------------------- span decode plane vs legacy vector path

class SpanPathEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::size_t>>
{
};

/**
 * Registry-driven property test: for every registered codec x window
 * size x pulse shape (trimmed to an odd length so every windowed
 * config has a clamped tail window), the span-based decode plane —
 * decodeInto and per-window decompressWindowInto — must be
 * bit-identical to the legacy vector path.
 */
TEST_P(SpanPathEquivalence, SpanDecodeBitIdenticalToVectorPath)
{
    const auto [codec_name, ws] = GetParam();
    if (codec_name == "int-dct" && !dsp::intDctSupported(ws))
        GTEST_SKIP() << "unsupported int-dct window";

    const auto codec =
        CodecRegistry::instance().create(codec_name, ws);
    for (const auto &shape : testShapes()) {
        // Odd-length trim: make numSamples % ws nonzero for every ws
        // under test (all are even), so the tail window is clamped.
        waveform::IqWaveform wf = shape.wf;
        ASSERT_GT(wf.i.size(), 1u);
        wf.i.resize(wf.i.size() - (wf.i.size() % 2 ? 2 : 1));
        wf.q.resize(wf.i.size());

        CompressedWaveform cw;
        codec->compress(wf, 1e-3, cw);

        for (const CompressedChannel *ch : {&cw.i, &cw.q}) {
            // Whole-channel: decodeInto == decompressChannel.
            std::vector<double> golden;
            codec->decompressChannel(*ch, golden);
            ASSERT_EQ(golden.size(), ch->numSamples);
            std::vector<double> span_out(ch->numSamples, -7.0);
            codec->decodeInto(*ch, span_out);
            ASSERT_EQ(span_out, golden)
                << codec_name << " ws=" << ws << " " << shape.name;

            // Per-window: the assembled windows reproduce the
            // channel exactly, including the odd-length tail.
            if (ch->windowSize == 0)
                continue;
            std::vector<double> assembled;
            std::vector<double> win(ch->windowSize, -7.0);
            std::vector<double> legacy;
            for (std::size_t w = 0; w < ch->numWindows(); ++w) {
                const std::size_t n =
                    codec->decompressWindowInto(*ch, w, win);
                ASSERT_EQ(n, ch->windowSamples(w));
                assembled.insert(
                    assembled.end(), win.begin(),
                    win.begin() + static_cast<std::ptrdiff_t>(n));
                // The vector shim agrees with the span primitive.
                codec->decompressWindow(*ch, w, legacy);
                ASSERT_EQ(legacy,
                          std::vector<double>(
                              win.begin(),
                              win.begin() +
                                  static_cast<std::ptrdiff_t>(n)))
                    << codec_name << " ws=" << ws << " w=" << w;
            }
            ASSERT_EQ(assembled, golden)
                << codec_name << " ws=" << ws << " " << shape.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredCodecs, SpanPathEquivalence,
    ::testing::Combine(
        ::testing::ValuesIn(CodecRegistry::instance().names()),
        ::testing::Values(std::size_t{4}, std::size_t{8},
                          std::size_t{16}, std::size_t{32})),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        std::replace(name.begin(), name.end(), '-', '_');
        return name + "_ws" + std::to_string(std::get<1>(info.param));
    });

// ------------------------- batch-of-windows decode vs window path

/** Forces a dsp::simd dispatch backend for one scope. */
class BackendGuard
{
  public:
    explicit BackendGuard(dsp::simd::Backend b)
        : prev_(dsp::simd::activeBackend())
    {
        dsp::simd::setBackend(b);
    }
    ~BackendGuard() { dsp::simd::setBackend(prev_); }
    BackendGuard(const BackendGuard &) = delete;
    BackendGuard &operator=(const BackendGuard &) = delete;

  private:
    dsp::simd::Backend prev_;
};

std::vector<dsp::simd::Backend>
supportedBackends()
{
    std::vector<dsp::simd::Backend> v;
    for (dsp::simd::Backend b :
         {dsp::simd::Backend::Scalar, dsp::simd::Backend::Avx2,
          dsp::simd::Backend::Neon})
        if (dsp::simd::backendSupported(b))
            v.push_back(b);
    return v;
}

class BatchDecodeEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::size_t>>
{
};

/**
 * Registry-driven property test for the batch decode plane: for
 * every registered codec x window size x pulse shape (odd-trimmed so
 * the tail window is clamped), decodeWindowsInto at every batch size
 * must be bit-identical to decompressWindowInto assembled per window
 * — and the result must be backend-independent: exact across every
 * supported SIMD backend for the integer codec paths, epsilon-equal
 * for the float-DCT codecs (their documented contract).
 */
TEST_P(BatchDecodeEquivalence, BatchMatchesPerWindowAcrossBackends)
{
    const auto [codec_name, ws] = GetParam();
    if (codec_name == "int-dct" && !dsp::intDctSupported(ws))
        GTEST_SKIP() << "unsupported int-dct window";
    const auto codec =
        CodecRegistry::instance().create(codec_name, ws);
    // Float-DCT codecs ("dct-*") carry the epsilon contract; every
    // other registered codec decodes through integer kernels and
    // must be bit-exact across backends.
    const bool float_codec = codec_name.rfind("dct", 0) == 0;

    for (const auto &shape : testShapes()) {
        waveform::IqWaveform wf = shape.wf;
        ASSERT_GT(wf.i.size(), 1u);
        wf.i.resize(wf.i.size() - (wf.i.size() % 2 ? 2 : 1));
        wf.q.resize(wf.i.size());
        CompressedWaveform cw;
        codec->compress(wf, 1e-3, cw);

        for (const CompressedChannel *ch : {&cw.i, &cw.q}) {
            if (ch->windowSize == 0)
                continue;
            const std::size_t nwin = ch->numWindows();

            // Per-window golden assembly (ambient backend).
            std::vector<double> golden;
            std::vector<double> win(ch->windowSize, -7.0);
            for (std::size_t w = 0; w < nwin; ++w) {
                const std::size_t n =
                    codec->decompressWindowInto(*ch, w, win);
                golden.insert(golden.end(), win.begin(),
                              win.begin() +
                                  static_cast<std::ptrdiff_t>(n));
            }

            // Every batch size, including ragged final chunks, must
            // reassemble the channel bit-identically.
            for (const std::size_t k : {1u, 2u, 3u, 5u, 8u}) {
                std::vector<double> assembled(golden.size(), -7.0);
                std::size_t written = 0;
                for (std::size_t w = 0; w < nwin;) {
                    const std::size_t run = std::min(k, nwin - w);
                    written += codec->decodeWindowsInto(
                        *ch, w, run,
                        SampleSpan(assembled).subspan(written));
                    w += run;
                }
                ASSERT_EQ(written, golden.size());
                ASSERT_EQ(assembled, golden)
                    << codec_name << " ws=" << ws << " k=" << k
                    << " " << shape.name;
            }

            // Backend sweep on the whole-channel batch.
            std::vector<double> scalar_out(golden.size(), -7.0);
            {
                BackendGuard g(dsp::simd::Backend::Scalar);
                codec->decodeWindowsInto(*ch, 0, nwin,
                                         SampleSpan(scalar_out));
            }
            for (dsp::simd::Backend b : supportedBackends()) {
                BackendGuard g(b);
                std::vector<double> out(golden.size(), -7.0);
                codec->decodeWindowsInto(*ch, 0, nwin,
                                         SampleSpan(out));
                if (float_codec) {
                    for (std::size_t i = 0; i < out.size(); ++i)
                        ASSERT_NEAR(out[i], scalar_out[i], 1e-12)
                            << codec_name << " ws=" << ws << " i="
                            << i << " backend "
                            << dsp::simd::backendName(b);
                } else {
                    ASSERT_EQ(out, scalar_out)
                        << codec_name << " ws=" << ws << " backend "
                        << dsp::simd::backendName(b);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredCodecs, BatchDecodeEquivalence,
    ::testing::Combine(
        ::testing::ValuesIn(CodecRegistry::instance().names()),
        ::testing::Values(std::size_t{4}, std::size_t{8},
                          std::size_t{16}, std::size_t{32})),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        std::replace(name.begin(), name.end(), '-', '_');
        return name + "_ws" + std::to_string(std::get<1>(info.param));
    });

TEST(BatchDecode, RejectsOutOfRangeWindows)
{
    const auto codec = CodecRegistry::instance().create("int-dct", 16);
    const auto wf = waveform::drag(144, 36.0, 0.2, 1.2);
    CompressedWaveform cw;
    codec->compress(wf, 1e-3, cw);
    const std::size_t nwin = cw.i.numWindows();
    std::vector<double> out(cw.i.numSamples);
    EXPECT_DEATH(codec->decodeWindowsInto(cw.i, nwin, 1,
                                          SampleSpan(out)),
                 "window");
    EXPECT_DEATH(codec->decodeWindowsInto(cw.i, 0, nwin + 1,
                                          SampleSpan(out)),
                 "window");
}

TEST(SpanPath, NonWindowedChannelThrowsLogicErrorNamingTheCodec)
{
    // A delta stream encoded without a window size has no random-
    // access structure: per-window decode must fail loudly with the
    // codec's name, not silently mis-stream.
    const auto codec = CodecRegistry::instance().create("delta", 0);
    const auto wf = waveform::drag(144, 36.0, 0.2, 1.2);
    CompressedWaveform cw;
    codec->compress(wf, 0.0, cw);
    ASSERT_EQ(cw.i.windowSize, 0u);
    std::vector<double> out(16);
    try {
        codec->decompressWindowInto(cw.i, 0, SampleSpan(out));
        FAIL() << "expected std::logic_error";
    } catch (const std::logic_error &e) {
        EXPECT_NE(std::string(e.what()).find("delta"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SpanPath, DeltaWindowDecodeIsCheckpointed)
{
    // Windowed delta stores one pattern checkpoint per boundary, so
    // window w decodes in O(ws) without replaying deltas 0..w*ws.
    const auto codec = CodecRegistry::instance().create("delta", 16);
    const auto wf = waveform::gaussianSquare(1360, 200, 0.12, 0.15);
    CompressedWaveform cw;
    codec->compress(wf, 0.0, cw);
    ASSERT_EQ(cw.i.windowSize, 16u);
    ASSERT_EQ(cw.i.delta.checkpointStride, 16u);
    EXPECT_EQ(cw.i.delta.checkpoints.size(),
              (wf.i.size() - 1) / 16);
    // The side index is accounted in the compressed size.
    EXPECT_GT(dsp::deltaCompressedBits(cw.i.delta),
              dsp::deltaCompressedBits(dsp::deltaEncode(wf.i)));
}

// ------------------------------------------------- pipeline facade

TEST(CompressionPipeline, FixedThresholdCompressRoundTrips)
{
    const auto pipe = CompressionPipeline::with("int-dct")
                          .window(16)
                          .threshold(1e-3)
                          .build();
    const auto wf = waveform::drag(144, 36.0, 0.2, 1.2);
    const auto cw = pipe.compress(wf);
    EXPECT_EQ(cw.codec, "int-dct");
    EXPECT_GE(cw.ratio(), 1.0);
    EXPECT_LT(pipe.roundTripMse(wf), 1e-4);
}

TEST(CompressionPipeline, ReusedBuffersMatchOneShot)
{
    const auto pipe = CompressionPipeline::with("dct-w")
                          .window(8)
                          .threshold(1e-3)
                          .build();
    const auto a = waveform::drag(144, 36.0, 0.2, 1.2);
    const auto b = waveform::gaussianSquare(1360, 200, 0.12, 0.15);

    CompressedWaveform cw;
    waveform::IqWaveform rt;
    // Run b through the same buffers first, then a: results must be
    // identical to the allocating one-shot calls.
    pipe.compress(b, cw);
    pipe.decompress(cw, rt);
    pipe.compress(a, cw);
    pipe.decompress(cw, rt);

    const auto one_shot = pipe.decompress(pipe.compress(a));
    EXPECT_EQ(rt.i, one_shot.i);
    EXPECT_EQ(rt.q, one_shot.q);
}

TEST(CompressionPipeline, RejectsWaveformFromOtherCodec)
{
    const auto int_pipe = CompressionPipeline::with("int-dct")
                              .window(16)
                              .threshold(1e-3)
                              .build();
    const auto delta_pipe = CompressionPipeline::with("delta").build();
    const auto cw =
        int_pipe.compress(waveform::drag(144, 36.0, 0.2, 1.2));
    EXPECT_DEATH({ auto rt = delta_pipe.decompress(cw); },
                 "different codec");
}

TEST(CompressionPipeline, TargetModeLibraryMatchesBuild)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    const auto built = CompressedLibrary::build(lib, cfg);
    const auto piped = CompressionPipeline::with("int-dct")
                           .window(16)
                           .mseTarget(cfg.targetMse)
                           .build()
                           .compressLibrary(lib);
    ASSERT_EQ(piped.size(), built.size());
    for (const auto &[id, e] : built.entries()) {
        const auto &p = piped.entry(id);
        EXPECT_DOUBLE_EQ(p.threshold, e.threshold);
        EXPECT_DOUBLE_EQ(p.mse, e.mse);
        EXPECT_EQ(p.cw.stats().compressedWords,
                  e.cw.stats().compressedWords);
    }
}

TEST(CompressionPipeline, CompressToTargetRequiresTarget)
{
    const auto pipe =
        CompressionPipeline::with("int-dct").window(16).build();
    const auto wf = waveform::drag(144, 36.0, 0.2, 1.2);
    EXPECT_FALSE(pipe.hasMseTarget());
    EXPECT_DEATH({ auto r = pipe.compressToTarget(wf); },
                 "mseTarget");
}

TEST(CompressionPipeline, FixedThresholdLibraryCoversAllGates)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = CompressionPipeline::with("int-dct")
                          .window(16)
                          .threshold(1e-3)
                          .build()
                          .compressLibrary(lib);
    EXPECT_EQ(clib.size(), lib.size());
    for (const auto &[id, e] : clib.entries())
        EXPECT_DOUBLE_EQ(e.threshold, 1e-3);
}

// ------------------------------------------------ extensibility seam

TEST(CodecExtensibility, CustomCodecWorksThroughEveryEntryPoint)
{
    const auto wf = waveform::drag(144, 36.0, 0.2, 1.2);

    // Pipeline facade (threshold 0: the verbatim codec is lossless).
    const auto pipe = CompressionPipeline::with("unit-raw")
                          .window(16)
                          .threshold(0.0)
                          .build();
    EXPECT_LT(pipe.roundTripMse(wf), 1e-12);

    // Fidelity-aware compression (Algorithm 1).
    FidelityAwareConfig cfg;
    cfg.base.codec = "unit-raw";
    cfg.base.windowSize = 16;
    const auto r = compressFidelityAware(wf, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.compressed.codec, "unit-raw");

    // Compressor/Decompressor pair.
    const Compressor comp({"unit-raw", 16, 0.0});
    Decompressor dec;
    const auto rt = dec.decompress(comp.compress(wf));
    EXPECT_EQ(rt.i, wf.i);
    EXPECT_EQ(rt.q, wf.q);

    // CompressedLibrary::build + save/load round trip.
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto clib = CompressedLibrary::build(lib, cfg);
    EXPECT_EQ(clib.size(), lib.size());
    std::stringstream ss;
    clib.save(ss);
    const auto loaded = CompressedLibrary::load(ss);
    EXPECT_EQ(loaded.size(), clib.size());
    for (const auto &[id, e] : loaded.entries())
        EXPECT_EQ(e.cw.codec, "unit-raw");
}

// ------------------------------------------- versioned serialization

TEST(SerializationHeader, RejectsWrongMagic)
{
    std::stringstream ss;
    ss << "garbage bytes, definitely not a library";
    EXPECT_DEATH({ auto l = CompressedLibrary::load(ss); }, "magic");
}

TEST(SerializationHeader, RejectsWrongVersion)
{
    // Correct magic ("CPQT" little-endian), bogus version.
    const std::uint32_t magic = 0x43505154;
    const std::uint32_t version = 99;
    std::stringstream ss;
    ss.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    ss.write(reinterpret_cast<const char *>(&version),
             sizeof(version));
    EXPECT_DEATH({ auto l = CompressedLibrary::load(ss); }, "version");
}

TEST(SerializationHeader, ReadsVersion1EnumCodedLibraries)
{
    // Hand-assemble a minimal v1 stream: one empty int-DCT-W entry
    // with the codec stored as the old enum byte (3 == IntDctW).
    std::stringstream ss;
    auto put = [&](const auto &v) {
        ss.write(reinterpret_cast<const char *>(&v), sizeof(v));
    };
    put(std::uint32_t{0x43505154}); // magic "CPQT"
    put(std::uint32_t{1});          // version
    put(std::uint64_t{1});          // entry count
    put(std::uint8_t{0});           // GateType::X
    put(std::int32_t{0});           // q0
    put(std::int32_t{-1});          // q1
    put(double{1e-3});              // threshold
    put(double{0.0});               // mse
    put(std::uint8_t{1});           // converged
    put(std::uint8_t{3});           // v1 enum byte 3 = int-DCT-W
    put(std::uint64_t{16});         // windowSize
    for (int ch = 0; ch < 2; ++ch) {
        put(std::uint64_t{0});  // numSamples
        put(std::uint64_t{16}); // windowSize
        put(std::uint64_t{0});  // window count
    }
    for (int d = 0; d < 2; ++d) {
        put(std::uint16_t{0}); // base
        put(std::int32_t{0});  // deltaWidth
        put(std::uint64_t{0}); // originalCount
        put(std::uint8_t{0});  // hasZeroCrossing
        put(std::uint64_t{0}); // delta count
    }
    const auto lib = CompressedLibrary::load(ss);
    ASSERT_EQ(lib.size(), 1u);
    EXPECT_EQ(lib.entry({waveform::GateType::X, 0, -1}).cw.codec,
              "int-dct");
}

TEST(SerializationHeader, RejectsUnregisteredCodecName)
{
    // A library whose entry claims a codec this process doesn't have.
    CompressedLibrary clib;
    CompressedEntry e;
    e.cw.codec = "codec-from-the-future";
    clib.insert({waveform::GateType::X, 0, -1}, std::move(e));
    std::stringstream ss;
    clib.save(ss);
    EXPECT_DEATH({ auto l = CompressedLibrary::load(ss); },
                 "not registered");
}

TEST(SerializationHeader, RejectsTruncatedStream)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    const auto clib = CompressedLibrary::build(lib, cfg);
    std::stringstream full;
    clib.save(full);
    const std::string bytes = full.str();

    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    EXPECT_DEATH({ auto l = CompressedLibrary::load(cut); },
                 "truncated");
}

} // namespace
} // namespace compaqt::core
