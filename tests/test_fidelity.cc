/**
 * @file
 * Unit tests for the fidelity substrate: gate algebra, pulse
 * integration, statevector simulation, Clifford groups, randomized
 * benchmarking, TVD, and the noise/gate-set machinery.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/circuit.hh"
#include "circuits/transpiler.hh"
#include "core/compressed_library.hh"
#include "fidelity/clifford.hh"
#include "fidelity/gates.hh"
#include "fidelity/noise.hh"
#include "fidelity/pulse_sim.hh"
#include "fidelity/rb.hh"
#include "fidelity/statevector.hh"
#include "fidelity/tvd.hh"
#include "waveform/library.hh"

namespace compaqt::fidelity
{
namespace
{

// ---------------------------------------------------------------- gates

TEST(Gates, PauliAlgebra)
{
    const Mat2 x = xGate(), y = yGate(), z = zGate();
    // XY = iZ
    const Mat2 xy = x * y;
    EXPECT_NEAR(std::abs(xy(0, 0) - Cplx(0, 1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(xy(1, 1) - Cplx(0, -1)), 0.0, 1e-12);
    // X^2 = I
    const Mat2 xx = x * x;
    EXPECT_NEAR(std::abs(xx(0, 0) - 1.0), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(xx(0, 1)), 0.0, 1e-12);
    (void)z;
}

TEST(Gates, SxSquaredIsX)
{
    const Mat2 sx2 = sxGate() * sxGate();
    EXPECT_LT(phaseDistance(sx2, xGate()), 1e-12);
}

TEST(Gates, RotationsComposeAdditively)
{
    const Mat2 a = rxGate(0.4) * rxGate(0.7);
    EXPECT_LT(phaseDistance(a, rxGate(1.1)), 1e-12);
    const Mat2 b = rzGate(0.5) * rzGate(-1.2);
    EXPECT_LT(phaseDistance(b, rzGate(-0.7)), 1e-12);
}

TEST(Gates, HadamardConjugatesXToZ)
{
    const Mat2 hxh = hGate() * xGate() * hGate();
    EXPECT_LT(phaseDistance(hxh, zGate()), 1e-12);
}

TEST(Gates, XyRotationMatchesRxRy)
{
    EXPECT_LT(phaseDistance(xyRotation(0.8, 0.0), rxGate(0.8)),
              1e-12);
    EXPECT_LT(phaseDistance(xyRotation(0.8, M_PI / 2), ryGate(0.8)),
              1e-12);
}

TEST(Gates, KroneckerAndCx)
{
    const Mat4 xi = kron(xGate(), Mat2::identity());
    // CX * (X (x) I) * CX = X (x) X.
    const Mat4 conj = cxGate() * xi * cxGate();
    EXPECT_LT(phaseDistance(conj, kron(xGate(), xGate())), 1e-12);
}

TEST(Gates, CrUnitaryBlockStructure)
{
    // theta = pi/2, phi = 0: control |0> sees Rx(pi/2), control |1>
    // sees Rx(-pi/2).
    const Mat4 u = crUnitary(M_PI / 2, 0.0);
    const Mat2 rp = rxGate(M_PI / 2), rm = rxGate(-M_PI / 2);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) {
            EXPECT_NEAR(std::abs(u(i, j) - rp(i, j)), 0.0, 1e-12);
            EXPECT_NEAR(std::abs(u(2 + i, 2 + j) - rm(i, j)), 0.0,
                        1e-12);
        }
}

TEST(Gates, AvgFidelityBounds)
{
    EXPECT_NEAR(avgGateFidelity(xGate(), xGate()), 1.0, 1e-12);
    // Orthogonal Paulis: |tr(X Z)| = 0 -> F = 1/3 for d=2.
    EXPECT_NEAR(avgGateFidelity(xGate(), zGate()), 1.0 / 3.0, 1e-12);
    const Mat4 cx = cxGate();
    EXPECT_NEAR(avgGateFidelity(cx, cx), 1.0, 1e-12);
}

// ------------------------------------------------------------ pulse sim

TEST(PulseSim, CalibratedDragGivesTargetRotation)
{
    const auto wf = waveform::drag(144, 36.0, 0.2, 0.0); // beta=0
    const double scale = calibrateRabiScale(wf, M_PI);
    const Mat2 u = simulatePulse(wf, scale);
    EXPECT_LT(phaseDistance(u, rxGate(M_PI)), 1e-6);
}

TEST(PulseSim, HalfAreaGivesHalfRotation)
{
    const auto wf = waveform::drag(144, 36.0, 0.1, 0.0);
    const double scale = calibrateRabiScale(wf, M_PI / 2);
    const Mat2 u = simulatePulse(wf, scale);
    EXPECT_LT(phaseDistance(u, rxGate(M_PI / 2)), 1e-6);
}

TEST(PulseSim, DragBetaTiltsAxisSlightly)
{
    const auto plain = waveform::drag(144, 36.0, 0.2, 0.0);
    const auto dragged = waveform::drag(144, 36.0, 0.2, 1.5);
    const double scale = calibrateRabiScale(plain, M_PI);
    const Mat2 u = simulatePulse(dragged, scale);
    const double err = 1.0 - avgGateFidelity(rxGate(M_PI), u);
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err, 1e-2); // small coherent deviation
}

TEST(PulseSim, IdenticalPulsesHaveZeroError)
{
    const auto wf = waveform::drag(144, 36.0, 0.2, 1.0);
    EXPECT_NEAR(pulseGateError(wf, wf, M_PI), 0.0, 1e-13);
}

TEST(PulseSim, DistortionRaisesGateError)
{
    const auto wf = waveform::drag(144, 36.0, 0.2, 1.0);
    auto distorted = wf;
    for (auto &v : distorted.i)
        v *= 1.02; // 2% amplitude error
    const double err = pulseGateError(wf, distorted, M_PI);
    EXPECT_GT(err, 1e-5);
    EXPECT_LT(err, 1e-2);
}

TEST(PulseSim, GateErrorTracksMse)
{
    // More distortion -> more gate error (the Algorithm 1 premise).
    const auto wf = waveform::drag(144, 36.0, 0.2, 1.0);
    double prev = -1.0;
    for (double eps : {1.001, 1.01, 1.05}) {
        auto d = wf;
        for (auto &v : d.i)
            v *= eps;
        const double err = pulseGateError(wf, d, M_PI);
        EXPECT_GT(err, prev);
        prev = err;
    }
}

TEST(PulseSim, CrPulseErrorIsSmallForSmallDistortion)
{
    const auto wf = waveform::gaussianSquare(1360, 200, 0.12, 0.1);
    auto d = wf;
    for (auto &v : d.i)
        v *= 1.001;
    const double err = crGateError(wf, d);
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err, 1e-4);
}

// ---------------------------------------------------------- statevector

TEST(Statevector, InitialState)
{
    Statevector sv(3);
    EXPECT_EQ(sv.dim(), 8u);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0] - 1.0), 0.0, 1e-15);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-15);
}

TEST(Statevector, XFlipsTheRightQubit)
{
    Statevector sv(3);
    sv.apply1(xGate(), 1);
    EXPECT_NEAR(std::norm(sv.amplitudes()[2]), 1.0, 1e-12);
}

TEST(Statevector, BellState)
{
    Statevector sv(2);
    sv.apply1(hGate(), 0);
    sv.apply2(cxGate(), 0, 1); // control q0 (high slot), target q1
    const auto p = sv.probabilities();
    EXPECT_NEAR(p[0], 0.5, 1e-12);
    EXPECT_NEAR(p[3], 0.5, 1e-12);
    EXPECT_NEAR(p[1] + p[2], 0.0, 1e-12);
}

TEST(Statevector, PauliChannelsPreserveNorm)
{
    Statevector sv(4);
    sv.apply1(hGate(), 0);
    sv.apply2(cxGate(), 0, 2);
    sv.applyPauliX(1);
    sv.applyPauliY(3);
    sv.applyPauliZ(0);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-12);
}

TEST(Statevector, MarginalSumsToOne)
{
    Statevector sv(4);
    sv.apply1(hGate(), 0);
    sv.apply1(hGate(), 2);
    sv.apply2(cxGate(), 0, 1);
    const auto m = sv.marginal({1, 3});
    ASSERT_EQ(m.size(), 4u);
    double total = 0.0;
    for (double p : m)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
    // Qubit 3 untouched: marginal bit 1 must be 0.
    EXPECT_NEAR(m[2] + m[3], 0.0, 1e-12);
}

TEST(Statevector, ReadoutErrorMixesDistribution)
{
    std::vector<double> dist = {1.0, 0.0, 0.0, 0.0};
    applyReadoutError(dist, 0.1);
    EXPECT_NEAR(dist[0], 0.81, 1e-12);
    EXPECT_NEAR(dist[1], 0.09, 1e-12);
    EXPECT_NEAR(dist[2], 0.09, 1e-12);
    EXPECT_NEAR(dist[3], 0.01, 1e-12);
}

TEST(Statevector, AsymmetricReadoutBiasesTowardZero)
{
    std::vector<double> dist = {0.0, 1.0}; // always |1>
    applyReadoutError(dist, 0.01, 0.04);
    EXPECT_NEAR(dist[0], 0.04, 1e-12);
    EXPECT_NEAR(dist[1], 0.96, 1e-12);
}

TEST(Statevector, AmplitudeDampingRelaxesTowardGround)
{
    // Repeated damping of |1> must decay P(1) like (1-gamma)^n in
    // expectation.
    Rng rng(77);
    const int trials = 2000;
    int survived = 0;
    for (int t = 0; t < trials; ++t) {
        Statevector sv(1);
        sv.apply1(xGate(), 0);
        for (int k = 0; k < 10; ++k)
            sv.applyAmplitudeDamping(0, 0.05, rng);
        survived += sv.probabilities()[1] > 0.5 ? 1 : 0;
    }
    const double expect = std::pow(0.95, 10);
    EXPECT_NEAR(survived / static_cast<double>(trials), expect, 0.04);
}

TEST(Statevector, AmplitudeDampingPreservesNorm)
{
    Rng rng(78);
    Statevector sv(3);
    sv.apply1(hGate(), 0);
    sv.apply2(cxGate(), 0, 1);
    sv.apply1(hGate(), 2);
    for (int k = 0; k < 20; ++k)
        for (int q = 0; q < 3; ++q)
            sv.applyAmplitudeDamping(q, 0.1, rng);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-9);
}

TEST(Statevector, AmplitudeDampingOnGroundIsNoOp)
{
    Rng rng(79);
    Statevector sv(2);
    const auto before = sv.amplitudes();
    sv.applyAmplitudeDamping(0, 0.5, rng);
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(sv.amplitudes()[i], before[i]);
}

// ------------------------------------------------------------------ TVD

TEST(Tvd, BasicProperties)
{
    const std::vector<double> p = {0.5, 0.5, 0.0, 0.0};
    const std::vector<double> q = {0.25, 0.25, 0.25, 0.25};
    EXPECT_NEAR(tvd(p, p), 0.0, 1e-15);
    EXPECT_NEAR(tvd(p, q), 0.5, 1e-12);
    EXPECT_NEAR(fidelityTvd(p, q), 0.5, 1e-12);
    // Symmetry.
    EXPECT_NEAR(tvd(p, q), tvd(q, p), 1e-15);
}

TEST(Tvd, DisjointDistributionsHaveUnitDistance)
{
    const std::vector<double> p = {1.0, 0.0};
    const std::vector<double> q = {0.0, 1.0};
    EXPECT_NEAR(tvd(p, q), 1.0, 1e-15);
    EXPECT_NEAR(fidelityTvd(p, q), 0.0, 1e-15);
}

// ------------------------------------------------------------- clifford

TEST(Clifford, GroupSizes)
{
    EXPECT_EQ(Clifford1Q::instance().size(), 24u);
    EXPECT_EQ(Clifford2Q::instance().size(), 11520u);
}

TEST(Clifford, InverseLookupIsExact)
{
    const auto &g1 = Clifford1Q::instance();
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t i = g1.sample(rng);
        const std::size_t inv = g1.inverseIndex(g1.element(i));
        const Mat2 prod = g1.element(inv) * g1.element(i);
        EXPECT_LT(phaseDistance(prod, Mat2::identity()), 1e-9);
    }
}

TEST(Clifford, TwoQubitInverseLookup)
{
    const auto &g2 = Clifford2Q::instance();
    Rng rng(4);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t i = g2.sample(rng);
        const std::size_t inv = g2.inverseIndex(g2.element(i));
        const Mat4 prod = g2.element(inv) * g2.element(i);
        EXPECT_LT(phaseDistance(prod, Mat4::identity()), 1e-9);
    }
}

TEST(Clifford, ContainsGenerators)
{
    const auto &g2 = Clifford2Q::instance();
    EXPECT_NO_FATAL_FAILURE(g2.indexOf(cxGate()));
    EXPECT_NO_FATAL_FAILURE(
        g2.indexOf(kron(hGate(), Mat2::identity())));
}

TEST(Clifford, ProductStaysInGroup)
{
    const auto &g2 = Clifford2Q::instance();
    Rng rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        const Mat4 a = g2.element(g2.sample(rng));
        const Mat4 b = g2.element(g2.sample(rng));
        EXPECT_NO_FATAL_FAILURE(g2.indexOf(a * b));
    }
}

// ------------------------------------------------------------------- RB

TEST(Rb, NoiselessSurvivalIsUnity)
{
    RbConfig cfg;
    cfg.lengths = {1, 5, 10};
    cfg.sequencesPerLength = 5;
    cfg.errorPerClifford = 0.0;
    const RbResult r = runRb2(cfg);
    for (double s : r.survival)
        EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Rb, FittedEpcMatchesInjectedError)
{
    RbConfig cfg;
    cfg.sequencesPerLength = 40;
    cfg.errorPerClifford = 1.65e-2; // Fig 9 baseline
    cfg.seed = 11;
    const RbResult r = runRb2(cfg);
    EXPECT_NEAR(r.epc, 1.65e-2, 4e-3);
    EXPECT_NEAR(r.alpha, 1.0 - 4.0 / 3.0 * 1.65e-2, 6e-3);
}

TEST(Rb, SingleQubitEpcMatches)
{
    RbConfig cfg;
    cfg.sequencesPerLength = 200;
    cfg.errorPerClifford = 1e-2;
    cfg.seed = 12;
    const RbResult r = runRb1(cfg);
    EXPECT_NEAR(r.epc, 1e-2, 3e-3);
}

TEST(Rb, PauliProbabilityConversion)
{
    // d=4: p = epc * 4/3 * 15/16 = 1.25 epc.
    EXPECT_NEAR(pauliProbabilityForEpc(1.65e-2, 4), 1.25 * 1.65e-2,
                1e-12);
    // d=2: p = epc * 2 * 3/4 = 1.5 epc.
    EXPECT_NEAR(pauliProbabilityForEpc(1e-2, 2), 1.5e-2, 1e-12);
}

TEST(Rb, MoreNoiseDecaysFaster)
{
    RbConfig low, high;
    low.sequencesPerLength = high.sequencesPerLength = 24;
    low.errorPerClifford = 5e-3;
    high.errorPerClifford = 4e-2;
    low.seed = high.seed = 21;
    EXPECT_GT(runRb2(low).alpha, runRb2(high).alpha);
}

// ------------------------------------------------------ noise / gatesets

TEST(Noise, IdealModelIsNoiseless)
{
    const NoiseModel nm = NoiseModel::ideal();
    EXPECT_EQ(nm.p1q, 0.0);
    EXPECT_EQ(nm.p2q, 0.0);
    EXPECT_EQ(nm.readout0to1, 0.0);
    EXPECT_EQ(nm.readout1to0, 0.0);
    EXPECT_EQ(nm.damp2q, 0.0);
}

TEST(Noise, MachineModelsAreDeterministic)
{
    const auto a = NoiseModel::ibm("guadalupe");
    const auto b = NoiseModel::ibm("guadalupe");
    EXPECT_DOUBLE_EQ(a.p2q, b.p2q);
    EXPECT_NE(a.p2q, NoiseModel::ibm("hanoi").p2q);
}

TEST(Noise, RunIdealBellCircuit)
{
    circuits::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.measureAll();
    const auto r = runIdeal(circuits::decompose(c));
    ASSERT_EQ(r.distribution.size(), 4u);
    EXPECT_NEAR(r.distribution[0], 0.5, 1e-9);
    EXPECT_NEAR(r.distribution[3], 0.5, 1e-9);
}

TEST(Noise, DepolarizingLowersFidelity)
{
    circuits::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.measureAll();
    const auto basis = circuits::decompose(c);
    const auto ideal = runIdeal(basis);
    NoiseModel nm = NoiseModel::ideal();
    nm.p2q = 0.2;
    Rng rng(31);
    const auto noisy = runNoisy(basis, GateSet::ideal(2), nm, 400, rng);
    const double f = fidelityTvd(ideal.distribution,
                                 noisy.distribution);
    EXPECT_LT(f, 0.99);
    EXPECT_GT(f, 0.75);
}

TEST(Noise, GateSetFromLibraryIsNearIdeal)
{
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    const auto gs = GateSet::fromLibrary(dev, lib);
    for (int q = 0; q < 5; ++q) {
        const double err =
            1.0 - avgGateFidelity(xGate(), gs.xGateOn(q));
        EXPECT_LT(err, 2e-2) << "q=" << q;
    }
    const double cx_err =
        1.0 - avgGateFidelity(cxGate(), gs.cxGateOn(0, 1));
    EXPECT_LT(cx_err, 5e-2);
}

TEST(Noise, CompressedGateSetCloseToBaseline)
{
    // The whole point of COMPAQT: decompressed pulses implement gates
    // nearly identical to the originals.
    const auto dev = waveform::DeviceModel::ibm("bogota");
    const auto lib = waveform::PulseLibrary::build(dev);
    core::FidelityAwareConfig cfg;
    cfg.base.codec = "int-dct";
    cfg.base.windowSize = 16;
    const auto clib = core::CompressedLibrary::build(lib, cfg);
    const auto base = GateSet::fromLibrary(dev, lib);
    const auto comp = GateSet::fromCompressed(dev, lib, clib);
    for (int q = 0; q < 5; ++q) {
        const double err = 1.0 - avgGateFidelity(base.xGateOn(q),
                                                 comp.xGateOn(q));
        // Paper Section IV-D: well under the stochastic noise floor
        // (the RB deltas of Table III are ~2e-3).
        EXPECT_LT(err, 3e-3) << "q=" << q;
    }
}

TEST(Noise, SampleShotsApproximatesDistribution)
{
    const std::vector<double> dist = {0.7, 0.1, 0.2, 0.0};
    Rng rng(41);
    const auto emp = sampleShots(dist, 80000, rng);
    for (std::size_t i = 0; i < dist.size(); ++i)
        EXPECT_NEAR(emp[i], dist[i], 0.01);
}

} // namespace
} // namespace compaqt::fidelity
