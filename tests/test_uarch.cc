/**
 * @file
 * Unit tests for the microarchitecture: banked memory, RLE decoder,
 * IDCT engines (golden-model equivalence), the decompression pipeline
 * and its bandwidth expansion, the controller's bank accounting, and
 * the timing/resource/scaling models behind Figs 5/16/17 and Tables
 * IV/V/VIII.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "circuits/scheduler.hh"
#include "circuits/surface_code.hh"
#include "core/adaptive.hh"
#include "core/compressor.hh"
#include "core/decompressor.hh"
#include "uarch/controller.hh"
#include "uarch/pipeline.hh"
#include "uarch/resources.hh"
#include "uarch/scaling.hh"
#include "uarch/timing.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"

namespace compaqt::uarch
{
namespace
{

core::CompressedWaveform
compressedDrag(std::size_t ws = 16)
{
    core::CompressorConfig cfg{"int-dct", ws, 2e-3};
    const core::Compressor comp(cfg);
    return comp.compress(waveform::drag(144, 36.0, 0.2, 1.2));
}

// ------------------------------------------------------------------ BRAM

TEST(Bram, InterleavesWordsAcrossBanks)
{
    BankedWaveform mem(3);
    mem.appendWindow({Word::sample(1), Word::sample(2),
                      Word::codeword(14)});
    mem.appendWindow({Word::sample(5), Word::codeword(15)});
    EXPECT_EQ(mem.numWindows(), 2u);
    EXPECT_EQ(mem.storedWords(), 5u);
    EXPECT_EQ(mem.paddedWords(), 6u);

    const auto w0 = mem.fetchWindow(0);
    ASSERT_EQ(w0.size(), 3u);
    EXPECT_EQ(w0[0].value, 1);
    EXPECT_TRUE(w0[2].isRle);

    const auto w1 = mem.fetchWindow(1);
    ASSERT_EQ(w1.size(), 2u); // short window: only occupied banks
    EXPECT_EQ(mem.accesses(), 5u);
}

TEST(Bram, RejectsOverwideWindows)
{
    BankedWaveform mem(2);
    EXPECT_DEATH(mem.appendWindow({Word::sample(1), Word::sample(2),
                                   Word::sample(3)}),
                 "width");
}

// ----------------------------------------------------------- RLE decoder

TEST(RleDecoder, ExpandsCodeword)
{
    RleDecoder dec(8);
    const auto out = dec.decode(
        {Word::sample(7), Word::sample(-3), Word::codeword(6)});
    ASSERT_EQ(out.size(), 8u);
    EXPECT_EQ(out[0], 7);
    EXPECT_EQ(out[1], -3);
    for (std::size_t i = 2; i < 8; ++i)
        EXPECT_EQ(out[i], 0);
    EXPECT_EQ(dec.cycles(), 1u);
}

TEST(RleDecoder, RejectsMalformedWindow)
{
    RleDecoder dec(8);
    EXPECT_DEATH(dec.decode({Word::sample(1)}), "wrong");
}

// ----------------------------------------------------------- IDCT engine

TEST(IdctEngine, MatchesSoftwareGoldenModel)
{
    const auto cw = compressedDrag();
    IdctEngine engine(EngineKind::IntDctW, 16);
    const dsp::IntDct golden(16);
    for (const auto &w : cw.i.windows) {
        const auto coeffs = core::Decompressor::expandWindowInt(w, 16);
        std::vector<std::int32_t> expect(16);
        golden.inverse(coeffs, expect);
        EXPECT_EQ(engine.transform(coeffs), expect);
    }
    EXPECT_EQ(engine.invocations(), cw.i.windows.size());
}

TEST(IdctEngine, IntEngineHasSingleCycleLatency)
{
    EXPECT_EQ(IdctEngine(EngineKind::IntDctW, 16).latency(), 1);
    EXPECT_GT(IdctEngine(EngineKind::DctW, 16).latency(), 1);
}

TEST(IdctEngine, OpCountsMultiplierless)
{
    IdctEngine engine(EngineKind::IntDctW, 8);
    engine.transform(std::vector<std::int32_t>(8, 50));
    EXPECT_EQ(engine.ops().multipliers(), 0);
    EXPECT_GT(engine.ops().adders(), 20);
    EXPECT_GT(engine.ops().shifters(), 10);
}

TEST(IdctEngine, LoefflerCountsForDctW)
{
    IdctEngine engine(EngineKind::DctW, 8);
    engine.transform(std::vector<std::int32_t>(8, 50));
    EXPECT_EQ(engine.ops().multipliers(), 11);
    EXPECT_EQ(engine.ops().adders(), 29);
}

// -------------------------------------------------------------- pipeline

TEST(Pipeline, StreamsBitExactSamples)
{
    const auto cw = compressedDrag();
    DecompressionPipeline pipe(EngineKind::IntDctW, 16,
                               cw.worstCaseWindowWords());
    pipe.load(cw.i);
    const auto result = pipe.stream();

    core::Decompressor dec;
    const auto golden = dec.decompressChannel(cw.i,
                                              "int-dct");
    ASSERT_EQ(result.samples.size(), golden.size());
    for (std::size_t k = 0; k < golden.size(); ++k)
        EXPECT_EQ(dsp::IntDct::dequantize(result.samples[k]),
                  golden[k])
            << "k=" << k;
}

TEST(Pipeline, BandwidthExpansionNearWindowSize)
{
    // WS samples emerge per fabric cycle in steady state: the Fig 2b
    // bandwidth boost.
    const auto cw = compressedDrag(16);
    DecompressionPipeline pipe(EngineKind::IntDctW, 16,
                               cw.worstCaseWindowWords());
    pipe.load(cw.i);
    const auto result = pipe.stream();
    EXPECT_GT(result.stats.samplesPerCycle(), 10.0);
    EXPECT_LE(result.stats.samplesPerCycle(), 16.0);
}

TEST(Pipeline, ReadsOnlyStoredWords)
{
    const auto cw = compressedDrag(16);
    DecompressionPipeline pipe(EngineKind::IntDctW, 16,
                               cw.worstCaseWindowWords());
    pipe.load(cw.i);
    const auto result = pipe.stream();
    EXPECT_EQ(result.stats.wordsRead, cw.i.totalWords());
    EXPECT_LT(result.stats.wordsRead, result.stats.samplesOut);
}

class PipelineWs : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PipelineWs, BitExactAtEveryWindowSize)
{
    const std::size_t ws = GetParam();
    const auto cw = compressedDrag(ws);
    DecompressionPipeline pipe(EngineKind::IntDctW, ws,
                               cw.worstCaseWindowWords());
    core::Decompressor dec;
    for (const auto *ch : {&cw.i, &cw.q}) {
        pipe.load(*ch);
        const auto hw = pipe.stream();
        const auto sw =
            dec.decompressChannel(*ch, "int-dct");
        ASSERT_EQ(hw.samples.size(), sw.size());
        for (std::size_t k = 0; k < sw.size(); ++k)
            ASSERT_EQ(dsp::IntDct::dequantize(hw.samples[k]), sw[k])
                << "ws=" << ws << " k=" << k;
    }
}

TEST_P(PipelineWs, ThroughputApproachesWindowSize)
{
    const std::size_t ws = GetParam();
    const auto cw = compressedDrag(ws);
    DecompressionPipeline pipe(EngineKind::IntDctW, ws,
                               cw.worstCaseWindowWords());
    pipe.load(cw.i);
    const auto r = pipe.stream();
    // Steady-state throughput is one window per cycle; fill latency
    // costs a few cycles, which a short 144-sample pulse feels most
    // at WS=32 (5 windows + 3 fill cycles).
    EXPECT_GT(r.stats.samplesPerCycle(),
              0.5 * static_cast<double>(ws));
}

INSTANTIATE_TEST_SUITE_P(AllWindowSizes, PipelineWs,
                         ::testing::Values(4, 8, 16, 32));

TEST(Pipeline, AdaptiveBypassSkipsIdct)
{
    core::CompressorConfig cfg{"int-dct", 16, 1e-3};
    const core::AdaptiveCompressor acomp(cfg);
    const auto wf = waveform::gaussianSquare(1360, 200, 0.12, 0.0);
    const auto ac = acomp.compress(wf);
    ASSERT_TRUE(ac.i.isAdaptive());

    // Generous width: the fixed-threshold ramps may exceed 3 words.
    DecompressionPipeline pipe(EngineKind::IntDctW, 16, 16);
    const auto result = pipe.streamAdaptive(ac.i);
    EXPECT_GT(result.stats.bypassSamples, 800u);
    EXPECT_EQ(result.stats.bypassSamples, ac.i.bypassSamples());
    // Only ramp windows touched the IDCT engine.
    EXPECT_LT(result.stats.idctWindows, ac.i.numWindows());
    // Decoded samples match the software decoder (the golden model).
    const core::Decompressor dec;
    const auto golden = dec.decompressChannel(ac.i, ac.codec);
    ASSERT_EQ(result.samples.size(), golden.size());
    for (std::size_t k = 0; k < golden.size(); ++k)
        EXPECT_NEAR(dsp::IntDct::dequantize(result.samples[k]),
                    golden[k], 1e-12);
}

TEST(Pipeline, StreamAdaptiveHandlesPlainChannels)
{
    // A channel the segmenter left plain streams identically through
    // streamAdaptive and the load()+stream() path.
    core::CompressorConfig cfg{"int-dct", 16, 1e-3};
    const core::Compressor comp(cfg);
    const auto cw = comp.compress(waveform::drag(144, 36.0, 0.2, 1.2));
    DecompressionPipeline a(EngineKind::IntDctW, 16, 16);
    DecompressionPipeline b(EngineKind::IntDctW, 16, 16);
    const auto viaAdaptive = a.streamAdaptive(cw.i);
    b.load(cw.i);
    const auto direct = b.stream();
    EXPECT_EQ(viaAdaptive.samples, direct.samples);
    EXPECT_EQ(viaAdaptive.stats.bypassSamples, 0u);
    EXPECT_EQ(viaAdaptive.stats.idctWindows,
              direct.stats.idctWindows);
}

// ------------------------------------------------------------ controller

class ControllerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dev_ = waveform::DeviceModel::ibm("guadalupe");
        lib_ = waveform::PulseLibrary::build(dev_);
        core::FidelityAwareConfig cfg;
        cfg.base.codec = "int-dct";
        cfg.base.windowSize = 16;
        clib_ = core::CompressedLibrary::build(lib_, cfg);
    }

    waveform::DeviceModel dev_ = waveform::DeviceModel::ibm("bogota");
    waveform::PulseLibrary lib_;
    core::CompressedLibrary clib_;
};

TEST_F(ControllerTest, QubitCapacityMatchesTableV)
{
    ControllerConfig uc;
    uc.compressed = false;
    const Controller base(uc, clib_);
    ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = 3;
    const Controller comp(cc, clib_);
    // ratio 16: uncompressed 16 banks/channel; compressed 3.
    EXPECT_EQ(base.banksPerChannel(), 16u);
    EXPECT_EQ(comp.banksPerChannel(), 3u);
    const double gain =
        static_cast<double>(comp.maxConcurrentQubits()) /
        static_cast<double>(base.maxConcurrentQubits());
    EXPECT_NEAR(gain, 16.0 / 3.0, 0.15);
}

TEST_F(ControllerTest, PlayGateMatchesGoldenDecode)
{
    ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = clib_.worstCaseWindowWords();
    Controller ctl(cc, clib_);
    const waveform::GateId id{waveform::GateType::X, 3, -1};
    const auto r = ctl.playGate(id);
    core::Decompressor dec;
    const auto golden = dec.decompressChannel(
        clib_.entry(id).cw.i, "int-dct");
    EXPECT_EQ(r.samples.size(), golden.size());
}

TEST_F(ControllerTest, RejectsWindowSizeMismatch)
{
    // Library compressed at WS=8, controller configured for WS=16: a
    // silent mismatch would stream garbage, so construction throws.
    core::FidelityAwareConfig fcfg;
    fcfg.base.codec = "int-dct";
    fcfg.base.windowSize = 8;
    const auto clib8 = core::CompressedLibrary::build(lib_, fcfg);
    ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = clib8.worstCaseWindowWords();
    EXPECT_THROW(Controller(cc, clib8), std::invalid_argument);
}

TEST_F(ControllerTest, RejectsNonIntegerCodec)
{
    core::FidelityAwareConfig fcfg;
    fcfg.base.codec = "dct-w";
    fcfg.base.windowSize = 16;
    const auto float_lib = core::CompressedLibrary::build(lib_, fcfg);
    ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = 16;
    EXPECT_THROW(Controller(cc, float_lib), std::invalid_argument);
}

TEST_F(ControllerTest, RejectsOverflowingMemoryWidth)
{
    ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = 1; // guadalupe needs more words per window
    EXPECT_THROW(Controller(cc, clib_), std::invalid_argument);
}

TEST_F(ControllerTest, UncompressedModeSkipsLibraryValidation)
{
    // The baseline controller never touches the compressed payload,
    // so a mismatched library is acceptable there.
    core::FidelityAwareConfig fcfg;
    fcfg.base.codec = "dct-w";
    fcfg.base.windowSize = 8;
    const auto float_lib = core::CompressedLibrary::build(lib_, fcfg);
    ControllerConfig uc;
    uc.compressed = false;
    EXPECT_NO_THROW(Controller(uc, float_lib));
}

TEST_F(ControllerTest, ExecuteEmptyScheduleIsZeroAndFeasible)
{
    ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = clib_.worstCaseWindowWords();
    const Controller ctl(cc, clib_);
    const auto stats = ctl.execute(circuits::Schedule{});
    EXPECT_EQ(stats.peakBanks, 0u);
    EXPECT_EQ(stats.peakChannels, 0);
    EXPECT_TRUE(stats.feasible);
    EXPECT_EQ(stats.totalSamples, 0u);
    EXPECT_EQ(stats.totalWordsRead, 0u);
    EXPECT_EQ(stats.missingGates, 0u);
    EXPECT_DOUBLE_EQ(stats.peakBandwidthBytesPerSec, 0.0);
}

TEST_F(ControllerTest, ExecuteCountsGatesMissingFromLibrary)
{
    ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = clib_.worstCaseWindowWords();
    const Controller ctl(cc, clib_);

    circuits::Circuit c(16);
    c.x(0);
    c.cx(0, 9); // (0, 9) is not a guadalupe coupler: no CX waveform
    const auto stats = ctl.execute(circuits::schedule(c, {}));
    EXPECT_EQ(stats.missingGates, 1u);
    // The played X still contributes sane demand.
    EXPECT_EQ(stats.peakChannels, cc.channelsPerQubit);
    EXPECT_GT(stats.totalSamples, 0u);
    EXPECT_TRUE(stats.feasible);
}

TEST_F(ControllerTest, ExecuteReportsInfeasibleBankBudget)
{
    ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = clib_.worstCaseWindowWords();
    cc.totalBrams = 4; // below even one channel pair's banks
    const Controller ctl(cc, clib_);

    circuits::Circuit c(4);
    for (int q = 0; q < 4; ++q)
        c.x(q); // four concurrent drives
    const auto stats = ctl.execute(circuits::schedule(c, {}));
    EXPECT_FALSE(stats.feasible);
    EXPECT_GT(stats.peakBanks, cc.totalBrams);
    EXPECT_EQ(stats.peakChannels, 4 * cc.channelsPerQubit);
    EXPECT_EQ(stats.missingGates, 0u);
}

TEST_F(ControllerTest, ExecuteSurfaceCodeSchedule)
{
    const auto sc = circuits::surface17();
    // Controller of the patch: compress the patch's own library.
    // Reuse guadalupe pulses by mapping: the schedule only needs
    // bank/bandwidth accounting, which depends on gate type.
    const auto sched = circuits::schedule(sc.circuit, {});
    ControllerConfig cc;
    cc.compressed = true;
    cc.windowSize = 16;
    cc.memoryWidth = 3;
    Controller ctl(cc, clib_);
    // Surface-17 uses qubits beyond guadalupe's library, so only run
    // the static capacity check here.
    EXPECT_GE(ctl.maxConcurrentQubits(), sc.totalQubits());
}

// ---------------------------------------------------------------- timing

TEST(Timing, BaselineIs294MHz)
{
    const auto t = baselineTiming();
    EXPECT_NEAR(t.fmaxMhz, 294.0, 1.0);
    EXPECT_DOUBLE_EQ(t.normalized, 1.0);
}

TEST(Timing, Figure16Ordering)
{
    const double dctw8 =
        engineTiming(EngineKind::DctW, 8).normalized;
    const double int8 =
        engineTiming(EngineKind::IntDctW, 8).normalized;
    const double int16 =
        engineTiming(EngineKind::IntDctW, 16).normalized;
    const double int32 =
        engineTiming(EngineKind::IntDctW, 32).normalized;
    // Multiplier path is much worse than shift-add.
    EXPECT_LT(dctw8, 0.75);
    // int-DCT-W: ~10% worst-case degradation, growing with WS.
    EXPECT_GT(int8, 0.85);
    EXPECT_GE(int8, int16);
    EXPECT_GT(int16, int32);
    EXPECT_GT(int32, 0.75);
}

TEST(Timing, PipeliningRestoresBaseline)
{
    const auto t = engineTiming(EngineKind::IntDctW, 16, true);
    EXPECT_DOUBLE_EQ(t.normalized, 1.0);
}

// -------------------------------------------------------------- resources

TEST(Resources, EngineScalesWithWindowSize)
{
    const auto r8 = engineResources(EngineKind::IntDctW, 8);
    const auto r16 = engineResources(EngineKind::IntDctW, 16);
    const auto r32 = engineResources(EngineKind::IntDctW, 32);
    EXPECT_LT(r8.luts, r16.luts);
    EXPECT_LT(r16.luts, r32.luts);
    EXPECT_LT(r8.ffs, r16.ffs);
    // WS=32 is the resource cliff of Section VII-C.
    EXPECT_GT(r32.luts, 4 * r16.luts - r16.luts / 2);
}

TEST(Resources, EngineIsSmallVsBaseline)
{
    const auto base = baselineResources();
    const auto r16 = engineResources(EngineKind::IntDctW, 16);
    EXPECT_LT(r16.luts, base.luts);
    EXPECT_LT(r16.ffs, base.ffs);
    // Under ~1% of the SoC.
    EXPECT_LT(lutPercent(r16), 1.5);
    EXPECT_LT(ffPercent(r16), 0.5);
}

// ---------------------------------------------------------------- scaling

TEST(Scaling, PerQubitMemoryMatchesTableI)
{
    // IBM ~18 KB, Google ~3 KB (Table I's rightmost column).
    const double ibm = memoryPerQubitBytes(VendorParams::ibm());
    const double google = memoryPerQubitBytes(VendorParams::google());
    EXPECT_NEAR(ibm / 1024.0, 18.0, 3.0);
    EXPECT_NEAR(google / 1024.0, 3.0, 1.0);
}

TEST(Scaling, CapacityScalesLinearly)
{
    const auto p = VendorParams::ibm();
    EXPECT_NEAR(memoryCapacityBytes(p, 100),
                100 * memoryPerQubitBytes(p), 1e-6);
}

TEST(Scaling, Figure5dFiveFoldDrop)
{
    const RfsocPlatform rf;
    const auto cap = capacityConstrainedQubits(rf, VendorParams::ibm());
    const auto bw = bandwidthConstrainedQubits(rf);
    EXPECT_GT(cap, 200u);
    EXPECT_LT(bw, 40u);
    EXPECT_GT(static_cast<double>(cap) / bw, 5.0);
}

TEST(Scaling, TableVGains)
{
    const RfsocPlatform rf;
    EXPECT_NEAR(qubitGain(rf, 8, 3), 2.66, 0.15);
    EXPECT_NEAR(qubitGain(rf, 16, 3), 5.33, 0.15);
}

TEST(Scaling, BanksPerChannelGeometry)
{
    const RfsocPlatform rf; // ratio 16
    EXPECT_EQ(banksPerChannel(rf, false, 16, 3), 16u);
    EXPECT_EQ(banksPerChannel(rf, true, 16, 3), 3u);
    // WS=8 needs two 8-point pipelines at ratio 16 (Section V-C).
    EXPECT_EQ(banksPerChannel(rf, true, 8, 3), 6u);
}

TEST(Scaling, NonMultipleClockRatioLowersGain)
{
    // Section V-C's example: ratio 6 with WS=8 gives ~2x, less than
    // the 8/3 = 2.66x of a ratio-8 system.
    RfsocPlatform rf;
    rf.clockRatio = 6;
    const double gain = qubitGain(rf, 8, 3);
    EXPECT_NEAR(gain, 2.0, 0.1);
}

} // namespace
} // namespace compaqt::uarch
