/**
 * @file
 * Unit tests for the waveform substrate: envelope shapes, device
 * models and their determinism, pulse libraries and the Table I
 * memory accounting, and the Table IX complex pulses.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "waveform/complex_gates.hh"
#include "waveform/device.hh"
#include "waveform/library.hh"
#include "waveform/shapes.hh"

namespace compaqt::waveform
{
namespace
{

// --------------------------------------------------------------- shapes

TEST(Shapes, LiftedGaussianEndpointsNearZero)
{
    // sigma = n/4 truncates the Gaussian at ~2 sigma, so the lifted
    // endpoints sit within ~1% of the amplitude (as on IBM backends).
    const auto g = liftedGaussian(144, 36.0, 0.2);
    ASSERT_EQ(g.size(), 144u);
    EXPECT_NEAR(g.front(), 0.0, 0.01 * 0.2);
    EXPECT_NEAR(g.back(), 0.0, 0.01 * 0.2);
    // Peak at center, value = amp.
    EXPECT_NEAR(g[71], 0.2, 1e-3);
    EXPECT_NEAR(g[72], 0.2, 1e-3);
}

TEST(Shapes, LiftedGaussianIsSymmetric)
{
    const auto g = liftedGaussian(100, 25.0, 0.15);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_NEAR(g[i], g[99 - i], 1e-12);
}

TEST(Shapes, GaussianDerivativeIsAntisymmetric)
{
    const auto d = gaussianDerivative(100, 25.0, 0.15);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_NEAR(d[i], -d[99 - i], 1e-12);
    // Crosses zero at the center.
    EXPECT_NEAR(d[49], -d[50], 1e-12);
}

TEST(Shapes, DragChannelsAreConsistent)
{
    const auto wf = drag(144, 36.0, 0.2, 1.5);
    ASSERT_EQ(wf.i.size(), 144u);
    ASSERT_EQ(wf.q.size(), 144u);
    // Q is the scaled derivative of I: check the finite-difference
    // relation at a few interior points.
    for (std::size_t k : {30u, 60u, 100u}) {
        const double fd = (wf.i[k + 1] - wf.i[k - 1]) / 2.0;
        EXPECT_NEAR(wf.q[k], 1.5 * fd, 5e-4) << "k=" << k;
    }
}

TEST(Shapes, GaussianSquareHasFlatTop)
{
    const auto wf = gaussianSquare(200, 40, 0.3, 0.0);
    // Flat section between the ramps.
    for (std::size_t k = 40; k < 160; ++k)
        EXPECT_DOUBLE_EQ(wf.i[k], 0.3);
    EXPECT_LT(wf.i[0], 0.02);
    EXPECT_LT(wf.i[199], 0.02);
    // Zero phase -> zero quadrature.
    for (double v : wf.q)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Shapes, GaussianSquarePhaseSetsQuadrature)
{
    const auto wf = gaussianSquare(200, 40, 0.3, 0.2);
    for (std::size_t k = 50; k < 150; ++k)
        EXPECT_NEAR(wf.q[k], 0.3 * std::tan(0.2), 1e-12);
}

TEST(Shapes, RaisedCosinePeaksAtCenter)
{
    const auto rc = raisedCosine(101, 0.4);
    EXPECT_NEAR(rc[50], 0.4, 1e-12);
    EXPECT_NEAR(rc[0], 0.0, 1e-12);
    EXPECT_NEAR(rc[100], 0.0, 1e-12);
}

TEST(Shapes, FindFlatRunLocatesTop)
{
    const auto wf = gaussianSquare(200, 40, 0.3, 0.0);
    const auto run = findFlatRun(wf.i, 32);
    EXPECT_EQ(run.start, 40u);
    EXPECT_EQ(run.length, 120u);
}

TEST(Shapes, FindFlatRunRejectsShortRuns)
{
    const std::vector<double> x = {0.1, 0.2, 0.2, 0.2, 0.3};
    const auto run = findFlatRun(x, 5);
    EXPECT_EQ(run.length, 0u);
    const auto run3 = findFlatRun(x, 3);
    EXPECT_EQ(run3.start, 1u);
    EXPECT_EQ(run3.length, 3u);
}

// --------------------------------------------------------------- device

TEST(Device, KnownMachineSizes)
{
    EXPECT_EQ(DeviceModel::ibm("bogota").numQubits(), 5u);
    EXPECT_EQ(DeviceModel::ibm("lima").numQubits(), 5u);
    EXPECT_EQ(DeviceModel::ibm("guadalupe").numQubits(), 16u);
    EXPECT_EQ(DeviceModel::ibm("toronto").numQubits(), 27u);
    EXPECT_EQ(DeviceModel::ibm("hanoi").numQubits(), 27u);
    EXPECT_EQ(DeviceModel::ibm("brooklyn").numQubits(), 65u);
    EXPECT_EQ(DeviceModel::ibm("washington").numQubits(), 127u);
}

TEST(Device, CalibrationIsDeterministicPerName)
{
    const auto a = DeviceModel::ibm("guadalupe");
    const auto b = DeviceModel::ibm("guadalupe");
    const auto c = DeviceModel::ibm("toronto");
    for (int q = 0; q < 16; ++q) {
        EXPECT_DOUBLE_EQ(a.qubit(q).xAmp, b.qubit(q).xAmp);
        EXPECT_DOUBLE_EQ(a.qubit(q).dragBeta, b.qubit(q).dragBeta);
    }
    // Different machines calibrate differently.
    EXPECT_NE(a.qubit(0).xAmp, c.qubit(0).xAmp);
}

TEST(Device, QubitsAreDistinct)
{
    const auto dev = DeviceModel::ibm("guadalupe");
    int distinct = 0;
    for (int q = 1; q < 16; ++q)
        distinct += dev.qubit(q).xAmp != dev.qubit(0).xAmp ? 1 : 0;
    EXPECT_EQ(distinct, 15);
}

TEST(Device, CalibrationRangesAreRealistic)
{
    const auto dev = DeviceModel::ibm("washington");
    for (int q = 0; q < 127; ++q) {
        const auto &cal = dev.qubit(q);
        EXPECT_GE(cal.xAmp, 0.10);
        EXPECT_LE(cal.xAmp, 0.25);
        EXPECT_NEAR(cal.sxAmp / cal.xAmp, 0.5, 0.021);
        EXPECT_LE(std::abs(cal.dragBeta), 2.0);
    }
}

TEST(Device, CouplingQueriesWork)
{
    const auto dev = DeviceModel::ibm("guadalupe");
    EXPECT_TRUE(dev.coupled(0, 1));
    EXPECT_TRUE(dev.coupled(1, 0));
    EXPECT_FALSE(dev.coupled(0, 2));
    const auto n1 = dev.neighbors(1);
    EXPECT_EQ(n1, (std::vector<int>{0, 2, 4}));
}

TEST(Device, HeavyHexDegreeBound)
{
    const auto edges = DeviceModel::heavyHexCoupling(127);
    std::vector<int> degree(127, 0);
    for (const auto &[a, b] : edges) {
        ++degree[static_cast<std::size_t>(a)];
        ++degree[static_cast<std::size_t>(b)];
    }
    for (int d : degree)
        EXPECT_LE(d, 3);
    // Edge density close to the heavy-hex ~1.13 edges/qubit.
    EXPECT_GT(edges.size(), 127u);
    EXPECT_LT(edges.size(), 150u);
}

TEST(Device, PairCalibrationIsDirectional)
{
    const auto dev = DeviceModel::ibm("guadalupe");
    const auto &ab = dev.pair(0, 1);
    const auto &ba = dev.pair(1, 0);
    EXPECT_NE(ab.crAmp, ba.crAmp);
}

// -------------------------------------------------------------- library

TEST(Library, ContainsAllGates)
{
    const auto dev = DeviceModel::ibm("guadalupe");
    const auto lib = PulseLibrary::build(dev);
    // 16 qubits x (X + SX + Meas) + 2 x 16 directed CX pulses.
    EXPECT_EQ(lib.size(), 16u * 3 + 2 * 16);
    EXPECT_TRUE(lib.contains({GateType::X, 5, -1}));
    EXPECT_TRUE(lib.contains({GateType::CX, 0, 1}));
    EXPECT_TRUE(lib.contains({GateType::CX, 1, 0}));
    EXPECT_FALSE(lib.contains({GateType::CX, 0, 2}));
}

TEST(Library, WaveformDurationsMatchDevice)
{
    const auto dev = DeviceModel::ibm("guadalupe");
    const auto lib = PulseLibrary::build(dev);
    EXPECT_EQ(lib.waveform({GateType::X, 0, -1}).size(),
              dev.oneQubitSamples());
    EXPECT_EQ(lib.waveform({GateType::CX, 0, 1}).size(),
              dev.twoQubitSamples());
    EXPECT_EQ(lib.waveform({GateType::Measure, 0, -1}).size(),
              dev.measureSamples());
}

TEST(Library, PerQubitMemoryNearPaperEstimate)
{
    // Section III: ~18 KB per qubit on IBM systems. The average over
    // the machine (degree ~2) lands in the 12-22 KB band.
    const auto dev = DeviceModel::ibm("guadalupe");
    const auto lib = PulseLibrary::build(dev);
    const double avg_kb = lib.totalBytes() / 1024.0 / dev.numQubits();
    EXPECT_GT(avg_kb, 12.0);
    EXPECT_LT(avg_kb, 22.0);
}

TEST(Library, TotalBytesConsistent)
{
    const auto dev = DeviceModel::ibm("bogota");
    const auto lib = PulseLibrary::build(dev);
    double sum = 0.0;
    for (const auto &[id, wf] : lib.entries())
        sum += lib.waveformBytes(id);
    EXPECT_NEAR(sum, lib.totalBytes(), 1e-6);
}

TEST(Library, XAndSxAmplitudesFollowCalibration)
{
    const auto dev = DeviceModel::ibm("guadalupe");
    const auto lib = PulseLibrary::build(dev);
    for (int q : {0, 3, 7, 15}) {
        const auto &x = lib.waveform({GateType::X, q, -1});
        const auto &sx = lib.waveform({GateType::SX, q, -1});
        const double xp = *std::max_element(x.i.begin(), x.i.end());
        const double sp = *std::max_element(sx.i.begin(), sx.i.end());
        // The sample grid straddles the exact center, so the sampled
        // peak sits a hair under the calibrated amplitude.
        EXPECT_NEAR(xp, dev.qubit(q).xAmp, 1e-3 * dev.qubit(q).xAmp);
        EXPECT_NEAR(sp, dev.qubit(q).sxAmp, 1e-3 * dev.qubit(q).sxAmp);
    }
}

TEST(Library, InsertReplacesWaveform)
{
    const auto dev = DeviceModel::ibm("bogota");
    auto lib = PulseLibrary::build(dev);
    IqWaveform wf;
    wf.i.assign(10, 0.5);
    wf.q.assign(10, 0.0);
    lib.insert({GateType::X, 0, -1}, wf);
    EXPECT_EQ(lib.waveform({GateType::X, 0, -1}).size(), 10u);
}

TEST(Library, GateIdFormatting)
{
    EXPECT_EQ(toString({GateType::SX, 2, -1}), "SX(q2)");
    EXPECT_EQ(toString({GateType::CX, 1, 4}), "CX(q1,q4)");
    EXPECT_EQ(toString({GateType::Measure, 0, -1}), "Meas(q0)");
}

// -------------------------------------------------------- complex gates

TEST(ComplexGates, SetHasFourPulses)
{
    const auto set = complexPulseSet();
    ASSERT_EQ(set.size(), 4u);
    EXPECT_EQ(set[0].gate, "iToffoli");
    EXPECT_EQ(set[3].device, "Fluxonium");
    for (const auto &cp : set) {
        EXPECT_GT(cp.wf.size(), 0u);
        EXPECT_EQ(cp.wf.i.size(), cp.wf.q.size());
    }
}

TEST(ComplexGates, EnvelopesAreBounded)
{
    for (const auto &cp : complexPulseSet()) {
        for (double v : cp.wf.i)
            EXPECT_LE(std::abs(v), 1.0);
        for (double v : cp.wf.q)
            EXPECT_LE(std::abs(v), 1.0);
    }
}

TEST(ComplexGates, IToffoliHasFlatTop)
{
    const auto wf = iToffoliPulse();
    const auto run = findFlatRun(wf.i, 64);
    EXPECT_GT(run.length, 512u);
}

} // namespace
} // namespace compaqt::waveform
