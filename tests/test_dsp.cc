/**
 * @file
 * Unit and property tests for the DSP substrate: DCT/IDCT round
 * trips, HEVC integer-transform correctness (matrix values,
 * butterfly-vs-dense equivalence, round-trip error bounds), CSD
 * decomposition, RLE and delta codecs, and metric helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hh"
#include "dsp/dct.hh"
#include "dsp/delta.hh"
#include "dsp/int_dct.hh"
#include "dsp/metrics.hh"
#include "dsp/rle.hh"
#include "dsp/shift_add.hh"
#include "dsp/simd.hh"
#include "waveform/shapes.hh"

namespace compaqt::dsp
{
namespace
{

std::vector<double>
randomSignal(std::size_t n, Rng &rng, double amp = 1.0)
{
    std::vector<double> x(n);
    for (auto &v : x)
        v = rng.uniform(-amp, amp);
    return x;
}

// ---------------------------------------------------------------- DCT

TEST(Dct, RoundTripIsIdentity)
{
    Rng rng(1);
    for (std::size_t n : {1u, 2u, 3u, 8u, 16u, 37u, 144u}) {
        const auto x = randomSignal(n, rng);
        const auto y = dct(x);
        const auto z = idct(y);
        ASSERT_EQ(z.size(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(z[i], x[i], 1e-10) << "n=" << n << " i=" << i;
    }
}

TEST(Dct, PreservesEnergyParseval)
{
    Rng rng(2);
    const auto x = randomSignal(64, rng);
    const auto y = dct(x);
    EXPECT_NEAR(energy(x), energy(y), 1e-9);
}

TEST(Dct, ConstantSignalCompactsToDc)
{
    const std::vector<double> x(16, 0.5);
    const auto y = dct(x);
    EXPECT_NEAR(y[0], 0.5 * std::sqrt(16.0), 1e-12);
    for (std::size_t k = 1; k < y.size(); ++k)
        EXPECT_NEAR(y[k], 0.0, 1e-12);
}

TEST(Dct, IsLinear)
{
    Rng rng(3);
    const auto a = randomSignal(32, rng);
    const auto b = randomSignal(32, rng);
    std::vector<double> sum(32);
    for (std::size_t i = 0; i < 32; ++i)
        sum[i] = 2.0 * a[i] - 3.0 * b[i];
    const auto ya = dct(a);
    const auto yb = dct(b);
    const auto ys = dct(sum);
    for (std::size_t k = 0; k < 32; ++k)
        EXPECT_NEAR(ys[k], 2.0 * ya[k] - 3.0 * yb[k], 1e-10);
}

TEST(Dct, SmoothSignalHasCompactSpectrum)
{
    // A DRAG-style Gaussian: nearly all energy in low coefficients.
    const auto g = waveform::liftedGaussian(128, 32.0, 0.2);
    const auto y = dct(g);
    const double total = energy(y);
    double low = 0.0;
    for (std::size_t k = 0; k < 16; ++k)
        low += y[k] * y[k];
    EXPECT_GT(low / total, 0.9999);
}

TEST(DctPlan, MatchesFreeFunctions)
{
    Rng rng(4);
    const auto x = randomSignal(16, rng);
    DctPlan plan(16);
    std::vector<double> y(16), z(16);
    plan.forward(x, y);
    const auto y2 = dct(x);
    for (std::size_t k = 0; k < 16; ++k)
        EXPECT_NEAR(y[k], y2[k], 1e-12);
    plan.inverse(y, z);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_NEAR(z[i], x[i], 1e-10);
}

// ---------------------------------------------------------- shift-add

TEST(Csd, MatchesPlainMultiplication)
{
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        const auto c = static_cast<std::int64_t>(
            rng.uniformInt(4096)) - 2048;
        const auto x = static_cast<std::int64_t>(
            rng.uniformInt(1 << 20)) - (1 << 19);
        EXPECT_EQ(multiplyShiftAdd(c, x), c * x)
            << "c=" << c << " x=" << x;
    }
}

TEST(Csd, NonAdjacentFormProperty)
{
    for (std::int64_t c : {1, 3, 7, 18, 36, 50, 64, 75, 83, 89, 90,
                           255, 1023}) {
        const auto digits = csd(c);
        for (std::size_t i = 1; i < digits.size(); ++i)
            EXPECT_GE(digits[i].shift - digits[i - 1].shift, 2)
                << "c=" << c;
        // Digits reconstruct the constant.
        std::int64_t sum = 0;
        for (const auto &d : digits)
            sum += d.sign * (std::int64_t{1} << d.shift);
        EXPECT_EQ(sum, c);
    }
}

TEST(Csd, KnownDigitCounts)
{
    EXPECT_EQ(csdDigits(64), 1);  // pure shift
    EXPECT_EQ(csdDigits(36), 2);  // 32 + 4
    EXPECT_EQ(csdDigits(18), 2);  // 16 + 2
    EXPECT_EQ(csdDigits(0), 0);
    EXPECT_EQ(csdDigits(7), 2);   // 8 - 1
}

TEST(OpCounter, SharesShiftTapsPerInput)
{
    OpCounter ops;
    ops.addConstantMultiply(0, 36); // shifts {5, 2}, 1 adder
    ops.addConstantMultiply(0, 18); // shifts {4, 1}, 1 adder
    ops.addConstantMultiply(0, 36); // taps already provisioned
    EXPECT_EQ(ops.adders(), 3);
    EXPECT_EQ(ops.shifters(), 4);
    ops.addConstantMultiply(1, 36); // new input: new taps
    EXPECT_EQ(ops.shifters(), 6);
    ops.reset();
    EXPECT_EQ(ops.adders(), 0);
    EXPECT_EQ(ops.shifters(), 0);
    EXPECT_EQ(ops.multipliers(), 0);
}

// ------------------------------------------------------------ int-DCT

TEST(IntDct, MatrixMatchesHevc8Point)
{
    // The canonical HEVC 8-point forward transform matrix.
    const int expected[8][8] = {
        {64, 64, 64, 64, 64, 64, 64, 64},
        {89, 75, 50, 18, -18, -50, -75, -89},
        {83, 36, -36, -83, -83, -36, 36, 83},
        {75, -18, -89, -50, 50, 89, 18, -75},
        {64, -64, -64, 64, 64, -64, -64, 64},
        {50, -89, 18, 75, -75, -18, 89, -50},
        {36, -83, 83, -36, -36, 83, -83, 36},
        {18, -50, 75, -89, 89, -75, 50, -18},
    };
    IntDct xform(8);
    for (std::size_t k = 0; k < 8; ++k)
        for (std::size_t i = 0; i < 8; ++i)
            EXPECT_EQ(xform.coeff(k, i), expected[k][i])
                << "k=" << k << " i=" << i;
}

TEST(IntDct, MatrixMatchesHevc4Point)
{
    const int expected[4][4] = {
        {64, 64, 64, 64},
        {83, 36, -36, -83},
        {64, -64, -64, 64},
        {36, -83, 83, -36},
    };
    IntDct xform(4);
    for (std::size_t k = 0; k < 4; ++k)
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_EQ(xform.coeff(k, i), expected[k][i]);
}

TEST(IntDct, RowsAreNearlyOrthogonal)
{
    for (std::size_t n : {4u, 8u, 16u, 32u}) {
        IntDct xform(n);
        const double scale = 4096.0 * static_cast<double>(n);
        for (std::size_t a = 0; a < n; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                double dot = 0.0;
                for (std::size_t i = 0; i < n; ++i)
                    dot += static_cast<double>(xform.coeff(a, i)) *
                           xform.coeff(b, i);
                if (a == b)
                    EXPECT_NEAR(dot / scale, 1.0, 0.01)
                        << "n=" << n << " row " << a;
                else
                    EXPECT_LT(std::abs(dot) / scale, 0.01)
                        << "n=" << n << " rows " << a << "," << b;
            }
        }
    }
}

TEST(IntDct, QuantizeDequantizeBounds)
{
    EXPECT_EQ(IntDct::quantize(0.0), 0);
    EXPECT_EQ(IntDct::quantize(1.0), 32767);
    EXPECT_EQ(IntDct::quantize(-1.0), -32767);
    EXPECT_EQ(IntDct::quantize(2.0), 32767); // saturates
    EXPECT_NEAR(IntDct::dequantize(IntDct::quantize(0.123)), 0.123,
                1e-4);
}

class IntDctSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(IntDctSizes, RoundTripWithinApproximationError)
{
    // The HEVC matrices are deliberately tuned away from exact
    // orthogonality, so the round trip carries a ~0.5% relative error
    // on white inputs (plus shift rounding); smooth waveforms do much
    // better (see the core-module MSE tests).
    const std::size_t n = GetParam();
    Rng rng(100 + n);
    IntDct xform(n);
    std::vector<std::int32_t> x(n), y(n), z(n);
    for (int trial = 0; trial < 50; ++trial) {
        for (auto &v : x)
            v = IntDct::quantize(rng.uniform(-0.5, 0.5));
        xform.forward(x, y);
        xform.inverse(y, z);
        double err2 = 0.0, sig2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            err2 += static_cast<double>(z[i] - x[i]) * (z[i] - x[i]);
            sig2 += static_cast<double>(x[i]) * x[i];
        }
        const double rel = std::sqrt(err2) / std::sqrt(sig2);
        EXPECT_LT(rel, 0.01) << "n=" << n;
    }
}

TEST(IntDct, RoundTripTightOnSmoothWaveforms)
{
    // The signals COMPAQT actually stores are smooth; there the
    // integer round trip is within a few LSB.
    const auto g = waveform::liftedGaussian(144, 36.0, 0.2);
    IntDct xform(16);
    std::vector<std::int32_t> x(16), y(16), z(16);
    for (std::size_t w = 0; w < 9; ++w) {
        for (std::size_t i = 0; i < 16; ++i)
            x[i] = IntDct::quantize(g[w * 16 + i]);
        xform.forward(x, y);
        xform.inverse(y, z);
        for (std::size_t i = 0; i < 16; ++i)
            EXPECT_NEAR(z[i], x[i], 8.0) << "w=" << w;
    }
}

TEST_P(IntDctSizes, ButterflyMatchesDenseInverse)
{
    const std::size_t n = GetParam();
    Rng rng(200 + n);
    IntDct xform(n);
    std::vector<std::int32_t> y(n), a(n), b(n);
    for (int trial = 0; trial < 50; ++trial) {
        for (auto &v : y)
            v = static_cast<std::int32_t>(rng.uniformInt(65536)) -
                32768;
        xform.inverse(y, a);
        xform.inverseButterfly(y, b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(a[i], b[i]) << "n=" << n << " i=" << i;
    }
}

TEST_P(IntDctSizes, PrefixInverseMatchesDenseInverse)
{
    // The prefix-sparse inverse (the decode-plane hot kernel) must be
    // bit-exact with the dense product on the zero-extended window,
    // at every possible prefix length including 0 and n.
    const std::size_t n = GetParam();
    Rng rng(300 + n);
    IntDct xform(n);
    std::vector<std::int32_t> y(n), a(n), b(n);
    for (std::size_t prefix = 0; prefix <= n; ++prefix) {
        for (int trial = 0; trial < 10; ++trial) {
            for (std::size_t k = 0; k < n; ++k)
                y[k] = k < prefix
                           ? static_cast<std::int32_t>(
                                 rng.uniformInt(65536)) -
                                 32768
                           : 0;
            xform.inverse(y, a);
            xform.inversePrefix(
                std::span<const std::int32_t>(y).first(prefix), b);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(a[i], b[i])
                    << "n=" << n << " prefix=" << prefix
                    << " i=" << i;
        }
    }
}

TEST_P(IntDctSizes, CoefficientScaleMapsAmplitudes)
{
    const std::size_t n = GetParam();
    IntDct xform(n);
    // A constant window of amplitude a yields a DC coefficient of
    // about a * sqrt(n) in orthonormal units.
    std::vector<std::int32_t> x(n, IntDct::quantize(0.25)), y(n);
    xform.forward(x, y);
    const double expected =
        0.25 * std::sqrt(static_cast<double>(n)) *
        xform.coefficientScale();
    EXPECT_NEAR(y[0], expected, std::abs(expected) * 0.01 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, IntDctSizes,
                         ::testing::Values(4, 8, 16, 32));

TEST(IntDct, RejectsUnsupportedSizes)
{
    EXPECT_FALSE(intDctSupported(6));
    EXPECT_FALSE(intDctSupported(64));
    EXPECT_TRUE(intDctSupported(8));
}

TEST(IntDct, OpCountsAreMultiplierless)
{
    IntDct xform(8);
    OpCounter ops;
    std::vector<std::int32_t> y(8, 100), x(8);
    xform.inverseButterfly(y, x, &ops);
    EXPECT_EQ(ops.multipliers(), 0);
    EXPECT_GT(ops.adders(), 0);
    EXPECT_GT(ops.shifters(), 0);
}

// ----------------------------------------------------------------- RLE

TEST(Rle, EncodesTrailingZerosOnly)
{
    const std::vector<std::int32_t> win = {5, 0, 3, 0, 0, 0, 0, 0};
    const auto words = rleEncode(std::span<const std::int32_t>(win));
    // Prefix 5,0,3 + one codeword for the 5 trailing zeros.
    ASSERT_EQ(words.size(), 4u);
    EXPECT_FALSE(words[0].isRle);
    EXPECT_EQ(words[0].value, 5);
    EXPECT_FALSE(words[1].isRle);
    EXPECT_EQ(words[1].value, 0);
    EXPECT_TRUE(words[3].isRle);
    EXPECT_EQ(words[3].count, 5u);
}

TEST(Rle, AllZeroWindowIsOneCodeword)
{
    const std::vector<std::int32_t> win(16, 0);
    const auto words = rleEncode(std::span<const std::int32_t>(win));
    ASSERT_EQ(words.size(), 1u);
    EXPECT_TRUE(words[0].isRle);
    EXPECT_EQ(words[0].count, 16u);
}

TEST(Rle, NoTrailingZerosOmitsCodeword)
{
    const std::vector<std::int32_t> win = {1, 2, 3, 4};
    const auto words = rleEncode(std::span<const std::int32_t>(win));
    EXPECT_EQ(words.size(), 4u);
    for (const auto &w : words)
        EXPECT_FALSE(w.isRle);
}

TEST(Rle, RoundTripProperty)
{
    Rng rng(9);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::int32_t> win(16, 0);
        // Random sparse prefix with a random trailing run.
        const std::size_t nz = rng.uniformInt(17);
        for (std::size_t i = 0; i < nz; ++i)
            win[i] = static_cast<std::int32_t>(rng.uniformInt(1000)) -
                     500;
        const auto words =
            rleEncode(std::span<const std::int32_t>(win));
        const auto decoded = rleDecode(
            std::span<const RleWord<std::int32_t>>(words), 16);
        EXPECT_EQ(decoded, win);
    }
}

TEST(Rle, DoubleSpecializationWorks)
{
    const std::vector<double> win = {0.5, 0.0, 0.0};
    const auto words = rleEncode(std::span<const double>(win));
    ASSERT_EQ(words.size(), 2u);
    const auto decoded =
        rleDecode(std::span<const RleWord<double>>(words), 3);
    EXPECT_EQ(decoded, win);
}

// --------------------------------------------------------------- delta

TEST(Delta, RoundTripIsLosslessAtQuantizedResolution)
{
    Rng rng(10);
    std::vector<double> x(200);
    for (auto &v : x)
        v = rng.uniform(-0.9, 0.9);
    const auto enc = deltaEncode(x);
    const auto dec = deltaDecode(enc);
    ASSERT_EQ(dec.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(dec[i], x[i], 1.0 / 32767.0);
}

TEST(Delta, SmoothPositiveWaveformCompressesNearTwofold)
{
    // A Gaussian never crossing zero: deltas are small.
    const auto g = waveform::liftedGaussian(256, 64.0, 0.3);
    const auto enc = deltaEncode(g);
    EXPECT_FALSE(enc.hasZeroCrossing);
    EXPECT_GT(deltaRatio(enc), 1.5);
}

TEST(Delta, ZeroCrossingKillsCompression)
{
    // A DRAG quadrature channel crosses zero at the pulse center;
    // the sign-magnitude delta blows up to the full bit-field.
    const auto d = waveform::gaussianDerivative(256, 64.0, 0.3);
    const auto enc = deltaEncode(d);
    EXPECT_TRUE(enc.hasZeroCrossing);
    EXPECT_LT(deltaRatio(enc), 1.2);
    EXPECT_GE(enc.deltaWidth, 15);
}

TEST(Delta, EmptyAndSingleSample)
{
    EXPECT_EQ(deltaEncode({}).originalCount, 0u);
    const std::vector<double> one = {0.25};
    const auto enc = deltaEncode(one);
    EXPECT_EQ(enc.originalCount, 1u);
    const auto dec = deltaDecode(enc);
    ASSERT_EQ(dec.size(), 1u);
    EXPECT_NEAR(dec[0], 0.25, 1e-4);
}

TEST(Delta, CheckpointedWindowDecodeMatchesFullDecode)
{
    Rng rng(77);
    std::vector<double> x(203); // odd length: clamped tail window
    for (auto &v : x)
        v = rng.uniform(-0.9, 0.9);
    const std::size_t stride = 16;
    const auto enc = deltaEncode(x, stride);
    EXPECT_EQ(enc.checkpointStride, stride);
    EXPECT_EQ(enc.checkpoints.size(), (x.size() - 1) / stride);

    const auto full = deltaDecode(enc);
    std::vector<double> win(stride, -9.0);
    const std::size_t nwin = (x.size() + stride - 1) / stride;
    for (std::size_t w = 0; w < nwin; ++w) {
        const std::size_t n = deltaDecodeWindowInto(enc, w, win);
        const std::size_t begin = w * stride;
        ASSERT_EQ(n, std::min(stride, x.size() - begin)) << w;
        for (std::size_t k = 0; k < n; ++k)
            EXPECT_EQ(win[k], full[begin + k])
                << "w=" << w << " k=" << k;
    }
}

TEST(Delta, SpanDecodeMatchesVectorDecode)
{
    Rng rng(78);
    std::vector<double> x(120);
    for (auto &v : x)
        v = rng.uniform(-0.9, 0.9);
    const auto enc = deltaEncode(x, 8);
    const auto golden = deltaDecode(enc);
    std::vector<double> out(x.size(), -9.0);
    deltaDecodeInto(enc, out);
    EXPECT_EQ(out, golden);
    // The checkpoint side index is charged to the compressed size.
    EXPECT_GT(deltaCompressedBits(enc),
              deltaCompressedBits(deltaEncode(x)));
}

// ----------------------------------------------------- simd kernels

/** Forces a dispatch backend for one scope, restoring the ambient
 *  backend on destruction — property tests sweep backends without
 *  leaking the override into later tests. */
class BackendGuard
{
  public:
    explicit BackendGuard(simd::Backend b)
        : prev_(simd::activeBackend())
    {
        simd::setBackend(b);
    }
    ~BackendGuard() { simd::setBackend(prev_); }
    BackendGuard(const BackendGuard &) = delete;
    BackendGuard &operator=(const BackendGuard &) = delete;

  private:
    simd::Backend prev_;
};

/** Every backend this build AND this host can actually run. */
std::vector<simd::Backend>
supportedBackends()
{
    std::vector<simd::Backend> v;
    for (simd::Backend b :
         {simd::Backend::Scalar, simd::Backend::Avx2,
          simd::Backend::Neon})
        if (simd::backendSupported(b))
            v.push_back(b);
    return v;
}

TEST(Simd, DispatchReportingAndUnsupportedClamp)
{
    using simd::Backend;
    EXPECT_TRUE(simd::backendSupported(Backend::Scalar));
    EXPECT_TRUE(simd::backendSupported(simd::detectedBackend()));
    EXPECT_TRUE(simd::backendSupported(simd::activeBackend()));
    EXPECT_STREQ(simd::kBackendEnvVar, "COMPAQT_SIMD");
    for (Backend b : {Backend::Scalar, Backend::Avx2, Backend::Neon}) {
        EXPECT_FALSE(simd::backendName(b).empty());
        EXPECT_GE(simd::int32Lanes(b), std::size_t{1});
        EXPECT_GE(simd::doubleLanes(b), std::size_t{1});
    }
    // Forcing a backend the host cannot run clamps to scalar rather
    // than faulting, and the guard restores the ambient choice.
    const Backend ambient = simd::activeBackend();
    for (Backend b : {Backend::Avx2, Backend::Neon}) {
        if (simd::backendSupported(b))
            continue;
        BackendGuard guard(b);
        EXPECT_EQ(simd::activeBackend(), Backend::Scalar);
    }
    EXPECT_EQ(simd::activeBackend(), ambient);
}

TEST(Simd, IdctPrefixBitIdenticalAcrossBackends)
{
    // The integer-IDCT kernel contract: bit-exact across backends at
    // every transform size and every prefix count 0..n, on the real
    // HEVC matrices with full-range Q15-scaled coefficients.
    for (const std::size_t n : {4u, 8u, 16u, 32u}) {
        Rng rng(900 + n);
        IntDct xform(n);
        std::vector<std::int32_t> m(n * n);
        for (std::size_t k = 0; k < n; ++k)
            for (std::size_t i = 0; i < n; ++i)
                m[k * n + i] = xform.coeff(k, i);
        std::vector<std::int32_t> y(n);
        for (auto &v : y)
            v = static_cast<std::int32_t>(rng.uniformInt(65536)) -
                32768;
        std::vector<std::int32_t> golden(n), out(n);
        for (std::size_t p = 0; p <= n; ++p) {
            {
                BackendGuard g(simd::Backend::Scalar);
                simd::idctPrefixInto(m.data(), n, y.data(), p,
                                     xform.inverseShift(),
                                     golden.data());
            }
            for (simd::Backend b : supportedBackends()) {
                BackendGuard g(b);
                std::fill(out.begin(), out.end(), -1);
                simd::idctPrefixInto(m.data(), n, y.data(), p,
                                     xform.inverseShift(),
                                     out.data());
                EXPECT_EQ(out, golden)
                    << "n=" << n << " p=" << p << " backend "
                    << simd::backendName(b);
            }
        }
    }
}

TEST(Simd, IntDctClassPathBitIdenticalAcrossBackends)
{
    // Same contract through the public IntDct entry points (what the
    // codecs actually call): dense inverse and prefix inverse under
    // each backend match the scalar-forced result exactly.
    for (const std::size_t n : {4u, 8u, 16u, 32u}) {
        Rng rng(910 + n);
        IntDct xform(n);
        std::vector<std::int32_t> y(n);
        for (auto &v : y)
            v = static_cast<std::int32_t>(rng.uniformInt(65536)) -
                32768;
        for (std::size_t p = 0; p <= n; ++p) {
            const auto prefix =
                std::span<const std::int32_t>(y).first(p);
            std::vector<std::int32_t> golden(n), out(n);
            {
                BackendGuard g(simd::Backend::Scalar);
                xform.inversePrefix(prefix, golden);
            }
            for (simd::Backend b : supportedBackends()) {
                BackendGuard g(b);
                xform.inversePrefix(prefix, out);
                EXPECT_EQ(out, golden)
                    << "n=" << n << " p=" << p << " backend "
                    << simd::backendName(b);
            }
        }
    }
}

TEST(Simd, PointwiseConversionsBitIdenticalAcrossBackends)
{
    // Q15 dequantize and sign-magnitude expansion are bit-exact on
    // any length, including the odd tails the vector paths peel.
    Rng rng(920);
    for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 15u, 33u,
                                128u}) {
        std::vector<std::int32_t> q(n), sm(n);
        for (std::size_t i = 0; i < n; ++i) {
            q[i] = static_cast<std::int32_t>(rng.uniformInt(65536)) -
                   32768;
            sm[i] =
                static_cast<std::int32_t>(rng.uniformInt(0x10000));
        }
        std::vector<double> gq(n), gs(n), oq(n), os(n);
        {
            BackendGuard g(simd::Backend::Scalar);
            simd::dequantizeQ15Into(q.data(), n, gq.data());
            simd::signMagnitudeToDoubles(sm.data(), n, gs.data());
        }
        for (simd::Backend b : supportedBackends()) {
            BackendGuard g(b);
            simd::dequantizeQ15Into(q.data(), n, oq.data());
            simd::signMagnitudeToDoubles(sm.data(), n, os.data());
            EXPECT_EQ(oq, gq)
                << "n=" << n << " backend " << simd::backendName(b);
            EXPECT_EQ(os, gs)
                << "n=" << n << " backend " << simd::backendName(b);
        }
    }
}

TEST(Simd, FloatIdctPrefixWithinEpsilonOfScalar)
{
    // The float-kernel contract is epsilon-bounded equality against
    // the scalar reference (in practice bit-exact — the kernels keep
    // the scalar accumulation order and use no FMA contraction).
    for (const std::size_t n : {4u, 8u, 16u, 32u}) {
        Rng rng(930 + n);
        std::vector<double> basis(n * n), y(n);
        for (auto &v : basis)
            v = rng.uniform(-1.0, 1.0);
        for (auto &v : y)
            v = rng.uniform(-1.0, 1.0);
        for (const std::size_t p : {std::size_t{0}, std::size_t{1},
                                    n / 2, n}) {
            std::vector<double> golden(n), out(n);
            {
                BackendGuard g(simd::Backend::Scalar);
                simd::floatIdctPrefixInto(basis.data(), n, y.data(),
                                          p, golden.data());
            }
            for (simd::Backend b : supportedBackends()) {
                BackendGuard g(b);
                simd::floatIdctPrefixInto(basis.data(), n, y.data(),
                                          p, out.data());
                for (std::size_t i = 0; i < n; ++i)
                    EXPECT_NEAR(out[i], golden[i], 1e-12)
                        << "n=" << n << " p=" << p << " i=" << i
                        << " backend " << simd::backendName(b);
            }
        }
    }
}

TEST(Simd, ZeroRunsClearExactlyTheRequestedRange)
{
    // The RLE fast paths must clear the run and nothing else, and the
    // double variant must produce +0.0 (the all-zero bit pattern).
    for (simd::Backend b : supportedBackends()) {
        BackendGuard g(b);
        for (const std::size_t n : {0u, 1u, 3u, 8u, 64u}) {
            std::vector<std::int32_t> vi(n + 8, 123);
            simd::zeroRunInt32(vi.data() + 4, n);
            std::vector<double> vd(n + 8, -7.5);
            simd::zeroRunDouble(vd.data() + 4, n);
            for (std::size_t i = 0; i < vi.size(); ++i) {
                const bool inside = i >= 4 && i < 4 + n;
                EXPECT_EQ(vi[i], inside ? 0 : 123)
                    << "n=" << n << " i=" << i;
                EXPECT_EQ(vd[i], inside ? 0.0 : -7.5)
                    << "n=" << n << " i=" << i;
                if (inside) {
                    EXPECT_FALSE(std::signbit(vd[i]))
                        << "n=" << n << " i=" << i;
                }
            }
        }
    }
}

// -------------------------------------------------------------- metrics

TEST(Metrics, MseAndMaxError)
{
    const std::vector<double> a = {1.0, 2.0, 3.0};
    const std::vector<double> b = {1.0, 2.5, 2.0};
    EXPECT_NEAR(mse(a, b), (0.25 + 1.0) / 3.0, 1e-12);
    EXPECT_NEAR(maxAbsError(a, b), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Metrics, CompressionStatsRatio)
{
    CompressionStats s{160, 25};
    EXPECT_NEAR(s.ratio(), 6.4, 1e-12);
    CompressionStats t{160, 0};
    EXPECT_DOUBLE_EQ(t.ratio(), 1.0);
    s += CompressionStats{40, 25};
    EXPECT_NEAR(s.ratio(), 4.0, 1e-12);
}

} // namespace
} // namespace compaqt::dsp
